// Package vcd writes and parses Value Change Dump files and extracts
// per-cycle dynamic delays from them. In the paper's flow, gate-level
// simulation emits a VCD of all switching activity and a script parses it
// to compute the dynamic delay of every cycle (time of the last toggled
// output after the clock edge); this package is both halves of that step.
//
// Timestamps are written in femtoseconds (timescale 1 fs) so picosecond
// gate delays with fractional parts survive the integer VCD timeline.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"tevot/internal/netlist"
)

// Change is one recorded value change of one signal.
type Change struct {
	Time int64 // femtoseconds
	Val  bool
}

// File is a parsed VCD document.
type File struct {
	Timescale string
	Date      string
	Version   string
	// Signals maps signal name to its change list, time-ordered.
	Signals map[string][]Change
}

const fsPerPs = 1000

// ToFS converts a simulator time (ps) to the VCD integer timeline.
func ToFS(ps float64) int64 { return int64(ps*fsPerPs + 0.5) }

// Writer incrementally emits a VCD file for the primary inputs and
// outputs of a netlist across a stream of simulation cycles.
type Writer struct {
	w      *bufio.Writer
	nl     *netlist.Netlist
	window int64 // fs per cycle window
	base   int64
	ids    map[netlist.NetID]string
	header bool
	err    error

	pending  map[string]bool // changes at the current timestamp
	lastTime int64
	haveTime bool
}

// NewWriter creates a Writer. window is the simulated cycle window in ps:
// cycle k's events land at k*window + t on the VCD timeline.
func NewWriter(w io.Writer, nl *netlist.Netlist, window float64) *Writer {
	return &Writer{
		w:       bufio.NewWriter(w),
		nl:      nl,
		window:  ToFS(window),
		ids:     make(map[netlist.NetID]string),
		pending: make(map[string]bool),
	}
}

// idCode produces the printable short identifier for the n-th declared
// variable, in the usual VCD base-94 style.
func idCode(n int) string {
	const lo, hi = 33, 127
	s := make([]byte, 0, 3)
	for {
		s = append(s, byte(lo+n%(hi-lo)))
		n /= hi - lo
		if n == 0 {
			break
		}
		n--
	}
	return string(s)
}

// WriteHeader emits the declaration section: timescale, scope, and one
// wire per primary input and output. It must be called before BeginCycle.
func (vw *Writer) WriteHeader(date, version string) error {
	if vw.header {
		return fmt.Errorf("vcd: header already written")
	}
	vw.header = true
	w := vw.w
	fmt.Fprintf(w, "$date %s $end\n", date)
	fmt.Fprintf(w, "$version %s $end\n", version)
	fmt.Fprintf(w, "$timescale 1 fs $end\n")
	fmt.Fprintf(w, "$scope module %s $end\n", vw.nl.Name)
	n := 0
	declare := func(net netlist.NetID) {
		id := idCode(n)
		n++
		vw.ids[net] = id
		fmt.Fprintf(w, "$var wire 1 %s %s $end\n", id, vw.nl.Nets[net].Name)
	}
	for _, pi := range vw.nl.PrimaryInputs {
		declare(pi)
	}
	for _, po := range vw.nl.PrimaryOutputs {
		declare(po)
	}
	fmt.Fprintf(w, "$upscope $end\n")
	fmt.Fprintf(w, "$enddefinitions $end\n")
	// All signals start unknown.
	fmt.Fprintf(w, "$dumpvars\n")
	for _, pi := range vw.nl.PrimaryInputs {
		fmt.Fprintf(w, "x%s\n", vw.ids[pi])
	}
	for _, po := range vw.nl.PrimaryOutputs {
		fmt.Fprintf(w, "x%s\n", vw.ids[po])
	}
	fmt.Fprintf(w, "$end\n")
	return nil
}

// BeginCycle positions the timeline at the start of cycle k.
func (vw *Writer) BeginCycle(k int) {
	vw.flushPending()
	vw.base = int64(k) * vw.window
}

// Observe records one net transition at time t (ps) within the current
// cycle. Nets that are not primary inputs or outputs are ignored, so this
// method can be used directly as a sim.Observer.
func (vw *Writer) Observe(net netlist.NetID, t float64, val bool) {
	id, ok := vw.ids[net]
	if !ok {
		return
	}
	ts := vw.base + ToFS(t)
	if vw.haveTime && ts != vw.lastTime {
		vw.flushPending()
	}
	vw.lastTime = ts
	vw.haveTime = true
	vw.pending[id] = val
}

func (vw *Writer) flushPending() {
	if len(vw.pending) == 0 {
		vw.haveTime = false
		return
	}
	fmt.Fprintf(vw.w, "#%d\n", vw.lastTime)
	ids := make([]string, 0, len(vw.pending))
	for id := range vw.pending {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := byte('0')
		if vw.pending[id] {
			v = '1'
		}
		fmt.Fprintf(vw.w, "%c%s\n", v, id)
	}
	for id := range vw.pending {
		delete(vw.pending, id)
	}
	vw.haveTime = false
}

// Close flushes buffered output. The Writer must not be used afterwards.
func (vw *Writer) Close() error {
	vw.flushPending()
	return vw.w.Flush()
}

// Parse reads a VCD document. Only single-bit wires are supported, which
// is all this flow produces. Unknown ('x', 'z') values clear the signal's
// recorded state but are not kept as changes.
func Parse(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	f := &File{Signals: make(map[string][]Change)}
	names := make(map[string]string) // id -> name
	var now int64
	inDefs := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "$date"):
			f.Date = trimKeyword(line, "$date")
		case strings.HasPrefix(line, "$version"):
			f.Version = trimKeyword(line, "$version")
		case strings.HasPrefix(line, "$timescale"):
			f.Timescale = trimKeyword(line, "$timescale")
		case strings.HasPrefix(line, "$var"):
			fields := strings.Fields(line)
			// $var wire 1 <id> <name> $end
			if len(fields) < 6 || fields[1] != "wire" {
				return nil, fmt.Errorf("vcd: unsupported var declaration %q", line)
			}
			if fields[2] != "1" {
				return nil, fmt.Errorf("vcd: only 1-bit wires supported, got %q", line)
			}
			names[fields[3]] = fields[4]
			f.Signals[fields[4]] = nil
		case strings.HasPrefix(line, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(line, "$"):
			// scope/upscope/dumpvars/end markers: no content we need.
		case line[0] == '#':
			t, err := strconv.ParseInt(line[1:], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("vcd: bad timestamp %q: %w", line, err)
			}
			if t < now {
				return nil, fmt.Errorf("vcd: timestamp %d goes backwards (now %d)", t, now)
			}
			now = t
		case line[0] == '0' || line[0] == '1':
			if inDefs {
				return nil, fmt.Errorf("vcd: value change %q before $enddefinitions", line)
			}
			id := line[1:]
			name, ok := names[id]
			if !ok {
				return nil, fmt.Errorf("vcd: change for undeclared id %q", id)
			}
			f.Signals[name] = append(f.Signals[name], Change{Time: now, Val: line[0] == '1'})
		case line[0] == 'x' || line[0] == 'z' || line[0] == 'X' || line[0] == 'Z':
			// Unknown values appear only in the initial dump; ignore.
		default:
			return nil, fmt.Errorf("vcd: unrecognized line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func trimKeyword(line, kw string) string {
	s := strings.TrimPrefix(line, kw)
	s = strings.TrimSuffix(strings.TrimSpace(s), "$end")
	return strings.TrimSpace(s)
}

// ExtractDelays computes the per-cycle dynamic delay from the parsed VCD:
// for each cycle window [k*window, (k+1)*window), the latest change of
// any of the named output signals, relative to the window start. Windows
// with no output activity report 0. window is in ps; cycles is the number
// of windows to extract.
func (f *File) ExtractDelays(outputs []string, window float64, cycles int) ([]float64, error) {
	wfs := ToFS(window)
	if wfs <= 0 {
		return nil, fmt.Errorf("vcd: non-positive window")
	}
	delays := make([]float64, cycles)
	for _, name := range outputs {
		changes, ok := f.Signals[name]
		if !ok {
			return nil, fmt.Errorf("vcd: no signal %q in dump", name)
		}
		for _, ch := range changes {
			k := ch.Time / wfs
			if k < 0 || k >= int64(cycles) {
				continue
			}
			rel := float64(ch.Time-k*wfs) / fsPerPs
			if rel > delays[k] {
				delays[k] = rel
			}
		}
	}
	return delays, nil
}
