package vcd

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/sim"
	"tevot/internal/sta"
)

// validVCD renders a short real simulation to VCD text for fuzz seeding.
func validVCD(t testing.TB) []byte {
	nl, err := netlist.Random(netlist.RandomOptions{Inputs: 4, Gates: 10, Outputs: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 25}
	static, err := sta.Analyze(nl, corner, sta.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, nl, static.Delay*1.5)
	if err := w.WriteHeader("tevot", "fuzz-seed"); err != nil {
		t.Fatal(err)
	}
	r, err := sim.NewRunner(nl, static.GateDelay)
	if err != nil {
		t.Fatal(err)
	}
	r.SetObserver(w.Observe)
	rng := rand.New(rand.NewSource(3))
	vec := func() []bool {
		v := make([]bool, len(nl.PrimaryInputs))
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		return v
	}
	prev := vec()
	for k := 0; k < 8; k++ {
		w.BeginCycle(k)
		cur := vec()
		if _, err := r.Cycle(prev, cur); err != nil {
			t.Fatal(err)
		}
		prev = nil
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzParse: Parse must never panic on arbitrary bytes, and accepted
// inputs must parse deterministically.
func FuzzParse(f *testing.F) {
	f.Add(validVCD(f))
	f.Add([]byte("$timescale 1fs $end\n$var wire 1 ! y0 $end\n$enddefinitions $end\n#0\n1!\n"))
	f.Add([]byte("$var wire 1 ! y0 $end\n1!\n"))      // change before enddefinitions
	f.Add([]byte("#5\n#3\n"))                         // time goes backwards
	f.Add([]byte("$var wire 2 ! bus $end\n"))         // multi-bit
	f.Add([]byte("#99999999999999999999999999999\n")) // overflow timestamp
	f.Add([]byte("x!\nz!\n"))
	f.Add([]byte("1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, errA := Parse(bytes.NewReader(data))
		b, errB := Parse(bytes.NewReader(data))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("nondeterministic parse outcome: %v vs %v", errA, errB)
		}
		if errA != nil {
			return
		}
		if a == nil || a.Signals == nil {
			t.Fatal("successful parse returned nil document")
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("nondeterministic parse result")
		}
	})
}

// TestParseSurvivesMutations: deterministic randomized mutation sweep in
// the style of internal/sim/fuzz_test.go — runs under plain `go test`.
func TestParseSurvivesMutations(t *testing.T) {
	valid := validVCD(t)
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 400; trial++ {
		mut := append([]byte(nil), valid...)
		switch trial % 4 {
		case 0:
			mut = mut[:rng.Intn(len(mut)+1)]
		case 1:
			for i := 0; i < 1+rng.Intn(6); i++ {
				mut[rng.Intn(len(mut))] = byte(rng.Intn(256))
			}
		case 2:
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:lo], mut[hi:]...)
		case 3:
			lo := rng.Intn(len(mut))
			hi := lo + rng.Intn(len(mut)-lo)
			mut = append(mut[:hi], append(append([]byte(nil), mut[lo:hi]...), mut[hi:]...)...)
		}
		_, _ = Parse(bytes.NewReader(mut)) // must not panic
	}
}
