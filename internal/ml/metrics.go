package ml

import "fmt"

// Accuracy is the fraction of equal entries between predicted and true
// class labels — the paper's Eq. 4 "prediction accuracy".
func Accuracy(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("ml: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("ml: empty prediction set")
	}
	match := 0
	for i := range pred {
		if pred[i] == truth[i] {
			match++
		}
	}
	return float64(match) / float64(len(pred)), nil
}

// AccuracyBool is Accuracy over boolean outcomes.
func AccuracyBool(pred, truth []bool) (float64, error) {
	if len(pred) != len(truth) {
		return 0, fmt.Errorf("ml: %d predictions for %d labels", len(pred), len(truth))
	}
	if len(pred) == 0 {
		return 0, fmt.Errorf("ml: empty prediction set")
	}
	match := 0
	for i := range pred {
		if pred[i] == truth[i] {
			match++
		}
	}
	return float64(match) / float64(len(pred)), nil
}

// MSE is the mean squared error of a regression prediction.
func MSE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: bad MSE operand lengths %d, %d", len(pred), len(truth))
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred)), nil
}

// MAE is the mean absolute error of a regression prediction.
func MAE(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: bad MAE operand lengths %d, %d", len(pred), len(truth))
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(pred)), nil
}

// R2 is the coefficient of determination of a regression prediction.
func R2(pred, truth []float64) (float64, error) {
	if len(pred) != len(truth) || len(pred) == 0 {
		return 0, fmt.Errorf("ml: bad R2 operand lengths %d, %d", len(pred), len(truth))
	}
	mean := 0.0
	for _, v := range truth {
		mean += v
	}
	mean /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range pred {
		d := truth[i] - pred[i]
		ssRes += d * d
		m := truth[i] - mean
		ssTot += m * m
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return 0, nil
	}
	return 1 - ssRes/ssTot, nil
}

// Confusion is a binary confusion matrix (positive class = true).
type Confusion struct {
	TP, FP, TN, FN int
}

// ConfusionBool tallies a binary confusion matrix.
func ConfusionBool(pred, truth []bool) (Confusion, error) {
	var c Confusion
	if len(pred) != len(truth) {
		return c, fmt.Errorf("ml: %d predictions for %d labels", len(pred), len(truth))
	}
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && !truth[i]:
			c.TN++
		default:
			c.FN++
		}
	}
	return c, nil
}

// Precision is TP / (TP + FP); 1 when no positives were predicted.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP + FN); 1 when there were no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy is the fraction of correct entries.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}
