package ml

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"tevot/internal/obs"
)

// Training/inference throughput gauges: the live view of whether the
// forest has stalled during an hours-long sweep. Set once per Fit /
// batched predict call — two time.Now reads and one atomic store, so
// the zero-alloc PredictBatchInto contract is untouched.
var (
	gFitRowsPerSec     = obs.NewGauge("ml.fit_rows_per_sec")
	gPredictRowsPerSec = obs.NewGauge("ml.predict_rows_per_sec")
)

// ForestConfig controls random-forest training.
type ForestConfig struct {
	// Trees is the ensemble size (default 10, the paper's stated
	// scikit-learn default).
	Trees int
	// Tree configures the member trees. Seed is overridden per tree.
	Tree TreeConfig
	// Bootstrap enables sampling with replacement per tree (default on
	// via NewRandomForest).
	Bootstrap bool
	// Seed drives bootstrap sampling and per-tree seeds.
	Seed int64
	// Workers bounds training parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultForestConfig mirrors the paper's setup: 10 trees, all features
// considered at each split, bootstrap sampling.
func DefaultForestConfig(mode Mode) ForestConfig {
	return ForestConfig{
		Trees:     10,
		Tree:      TreeConfig{Mode: mode},
		Bootstrap: true,
		Seed:      1,
	}
}

// RandomForest is a bagged ensemble of CART trees: the model the paper
// selects for TEVoT ("RFC" in Table II). After fitting (or loading) the
// ensemble is additionally packed into a flat node arena (see
// flatForest) that Predict and PredictBatch walk allocation-free.
type RandomForest struct {
	cfg   ForestConfig
	trees []*DecisionTree
	flat  *flatForest
}

// NewRandomForest returns an unfitted forest.
func NewRandomForest(cfg ForestConfig) *RandomForest {
	if cfg.Trees <= 0 {
		cfg.Trees = 10
	}
	return &RandomForest{cfg: cfg}
}

// Fit trains every member tree, in parallel, each on its own bootstrap
// sample. Deterministic for a fixed Seed regardless of worker count.
func (f *RandomForest) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	n := len(X)
	fitStart := time.Now()
	f.trees = make([]*DecisionTree, f.cfg.Trees)
	errs := make([]error, f.cfg.Trees)

	workers := f.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Acquire the semaphore before spawning: a 500-tree forest with 8
	// workers runs at most 8 goroutines at a time, instead of parking 500
	// (each with its own stack) on the channel.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for ti := 0; ti < f.cfg.Trees; ti++ {
		sem <- struct{}{}
		wg.Add(1)
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			cfg := f.cfg.Tree
			cfg.Seed = f.cfg.Seed + int64(ti)*7919
			tree := NewDecisionTree(cfg)
			idx := make([]int, n)
			if f.cfg.Bootstrap {
				rng := rand.New(rand.NewSource(cfg.Seed))
				for i := range idx {
					idx[i] = rng.Intn(n)
				}
			} else {
				for i := range idx {
					idx[i] = i
				}
			}
			errs[ti] = tree.FitIndices(X, y, idx)
			f.trees[ti] = tree
		}(ti)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	f.flat = flatten(f.trees, f.cfg.Tree.Mode)
	if d := time.Since(fitStart).Seconds(); d > 0 {
		gFitRowsPerSec.Set(float64(n) / d)
	}
	return nil
}

// Predict aggregates the member trees: mean for regression, majority
// vote (lower class wins ties) for classification. The fitted forest
// predicts through the flat arena without allocating.
func (f *RandomForest) Predict(x []float64) float64 {
	if f.flat != nil {
		var stack [maxStackClasses]int
		votes := stack[:]
		if f.flat.classes > maxStackClasses {
			votes = make([]int, f.flat.classes)
		}
		return f.flat.predictRow(x, votes)
	}
	if len(f.trees) == 0 {
		return 0
	}
	return f.predictTrees(x)
}

// predictTrees is the pointer-tree reference aggregation, kept for
// unpacked forests and as the oracle the flat arena is tested against.
func (f *RandomForest) predictTrees(x []float64) float64 {
	if f.cfg.Tree.Mode == Regression {
		sum := 0.0
		for _, t := range f.trees {
			sum += t.Predict(x)
		}
		return sum / float64(len(f.trees))
	}
	votes := make(map[int]int)
	bestC, bestN := 0, -1
	for _, t := range f.trees {
		c := int(t.Predict(x))
		votes[c]++
		// Deterministic tie-break: lower class wins on equal votes.
		if votes[c] > bestN || (votes[c] == bestN && c < bestC) {
			bestC, bestN = c, votes[c]
		}
	}
	return float64(bestC)
}

// PredictBatch predicts many rows, partitioned in contiguous blocks
// across up to cfg.Workers goroutines.
func (f *RandomForest) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	f.PredictBatchInto(out, X)
	return out
}

// PredictBatchInto is PredictBatch writing into the caller-provided dst
// (len(dst) must be >= len(X)), so a steady-state inference loop reuses
// one output buffer. Blocks of rows are predicted on up to cfg.Workers
// goroutines; small batches run inline and allocation-free.
func (f *RandomForest) PredictBatchInto(dst []float64, X [][]float64) {
	start := time.Now()
	if f.flat != nil {
		f.flat.predictBlocked(X, dst[:len(X)], f.cfg.Workers)
	} else {
		for i := range X {
			dst[i] = f.Predict(X[i])
		}
	}
	if d := time.Since(start).Seconds(); d > 0 {
		gPredictRowsPerSec.Set(float64(len(X)) / d)
	}
}

// NumTrees reports the fitted ensemble size.
func (f *RandomForest) NumTrees() int { return len(f.trees) }

// Importance returns the mean impurity-decrease feature importance of
// the ensemble, normalized to sum to 1 (all zeros if no split was ever
// made). This is the interpretability the paper credits the random
// forest with: which bit positions and condition features drive the
// dynamic delay.
func (f *RandomForest) Importance() []float64 {
	if len(f.trees) == 0 || len(f.trees[0].importance) == 0 {
		return nil
	}
	total := make([]float64, len(f.trees[0].importance))
	for _, t := range f.trees {
		for i, v := range t.importance {
			total[i] += v
		}
	}
	sum := 0.0
	for _, v := range total {
		sum += v
	}
	if sum > 0 {
		for i := range total {
			total[i] /= sum
		}
	}
	return total
}

// Trees exposes the fitted member trees (for introspection in tests).
func (f *RandomForest) Trees() []*DecisionTree { return f.trees }
