package ml

import (
	"fmt"
	"runtime"
	"sync"
)

// KNN is a brute-force k-nearest-neighbors model (Euclidean metric).
// Training is instant (store the data); prediction scans the whole
// training set — reproducing the paper's Table II profile where k-NN has
// negligible training time and by far the largest testing time.
type KNN struct {
	K    int  // neighbors (default 5)
	Mode Mode // Regression: mean of neighbors; Classification: majority

	X [][]float64
	y []float64
}

// NewKNN returns an unfitted model.
func NewKNN(k int, mode Mode) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k, Mode: mode}
}

// Fit stores the training set (no copying).
func (m *KNN) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	m.X, m.y = X, y
	return nil
}

// Predict returns the aggregate of the K nearest training labels.
func (m *KNN) Predict(x []float64) float64 {
	k := m.K
	if k > len(m.X) {
		k = len(m.X)
	}
	// Bounded max-heap of the k best (distance, index) pairs, kept as a
	// simple insertion list since k is small.
	dists := make([]float64, 0, k)
	idxs := make([]int, 0, k)
	worst := -1.0
	for i, row := range m.X {
		d := sqDist(x, row)
		if len(dists) < k {
			dists = append(dists, d)
			idxs = append(idxs, i)
			if d > worst {
				worst = d
			}
			continue
		}
		if d >= worst {
			continue
		}
		// Replace the current worst.
		wi, wd := 0, -1.0
		for j, dj := range dists {
			if dj > wd {
				wi, wd = j, dj
			}
		}
		dists[wi], idxs[wi] = d, i
		worst = -1
		for _, dj := range dists {
			if dj > worst {
				worst = dj
			}
		}
	}
	if m.Mode == Regression {
		sum := 0.0
		for _, i := range idxs {
			sum += m.y[i]
		}
		return sum / float64(len(idxs))
	}
	votes := make(map[int]int)
	bestC, bestN := 0, -1
	for _, i := range idxs {
		c := int(m.y[i])
		votes[c]++
		if votes[c] > bestN || (votes[c] == bestN && c < bestC) {
			bestC, bestN = c, votes[c]
		}
	}
	return float64(bestC)
}

// PredictBatch predicts many rows, in parallel.
func (m *KNN) PredictBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	chunk := (len(X) + workers - 1) / workers
	if chunk == 0 {
		chunk = 1
	}
	for lo := 0; lo < len(X); lo += chunk {
		hi := lo + chunk
		if hi > len(X) {
			hi = len(X)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.Predict(X[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
