package ml

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// refPredict is the pointer-tree oracle the flat arena must match.
func refPredict(f *RandomForest, x []float64) float64 {
	return f.predictTrees(x)
}

// randomRow draws a TEVoT-shaped feature vector.
func randomRow(rng *rand.Rand) []float64 {
	x := make([]float64, 130)
	for j := 0; j < 128; j++ {
		x[j] = float64(rng.Intn(2))
	}
	x[128] = 0.81 + float64(rng.Intn(20))*0.01
	x[129] = float64(rng.Intn(5)) * 25
	return x
}

// TestFlatForestMatchesPointerTrees is the quickcheck of the flattened
// arena: across random forests (both modes, several seeds) and random
// rows, the flat walk must agree exactly with the pointer-tree walk.
func TestFlatForestMatchesPointerTrees(t *testing.T) {
	for _, mode := range []Mode{Regression, Classification} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			n := 400
			X := make([][]float64, n)
			y := make([]float64, n)
			for i := range X {
				X[i] = randomRow(rng)
				if mode == Regression {
					y[i] = 100 + 40*X[i][30] + 20*X[i][62] + X[i][128]*10
				} else {
					y[i] = float64(rng.Intn(3))
				}
			}
			cfg := DefaultForestConfig(mode)
			cfg.Seed = seed
			f := NewRandomForest(cfg)
			if err := f.Fit(X, y); err != nil {
				t.Fatal(err)
			}
			if f.flat == nil {
				t.Fatal("Fit did not build the flat arena")
			}
			for trial := 0; trial < 500; trial++ {
				x := randomRow(rng)
				want := refPredict(f, x)
				got := f.Predict(x)
				if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
					t.Fatalf("mode %v seed %d trial %d: flat Predict %v != pointer-tree %v", mode, seed, trial, got, want)
				}
			}
			// Batch path: same rows through PredictBatch and the Into
			// variant must reproduce per-row Predict exactly.
			batch := make([][]float64, 700)
			for i := range batch {
				batch[i] = randomRow(rng)
			}
			out := f.PredictBatch(batch)
			dst := make([]float64, len(batch))
			f.PredictBatchInto(dst, batch)
			for i := range batch {
				want := refPredict(f, batch[i])
				if out[i] != want {
					t.Fatalf("mode %v seed %d row %d: PredictBatch %v != %v", mode, seed, i, out[i], want)
				}
				if dst[i] != want {
					t.Fatalf("mode %v seed %d row %d: PredictBatchInto %v != %v", mode, seed, i, dst[i], want)
				}
			}
		}
	}
}

// TestFlatForestSurvivesSaveLoad checks that a round-tripped forest
// rebuilds its arena and predicts identically.
func TestFlatForestSurvivesSaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	X := make([][]float64, 300)
	y := make([]float64, 300)
	for i := range X {
		X[i] = randomRow(rng)
		y[i] = 50 + 10*X[i][5] + X[i][129]
	}
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.flat == nil {
		t.Fatal("LoadForest did not rebuild the flat arena")
	}
	for trial := 0; trial < 200; trial++ {
		x := randomRow(rng)
		if got, want := g.Predict(x), f.Predict(x); got != want {
			t.Fatalf("trial %d: loaded forest predicts %v, original %v", trial, got, want)
		}
	}
}

// TestPredictBatchIntoNoAllocs locks in the allocation-free batched
// inference path (inline, no goroutine fan-out) for both modes.
func TestPredictBatchIntoNoAllocs(t *testing.T) {
	for _, mode := range []Mode{Regression, Classification} {
		rng := rand.New(rand.NewSource(4))
		X := make([][]float64, 300)
		y := make([]float64, 300)
		for i := range X {
			X[i] = randomRow(rng)
			if mode == Regression {
				y[i] = 100 + 20*X[i][31]
			} else {
				y[i] = float64(rng.Intn(2))
			}
		}
		cfg := DefaultForestConfig(mode)
		cfg.Workers = 1
		f := NewRandomForest(cfg)
		if err := f.Fit(X, y); err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, len(X))
		allocs := testing.AllocsPerRun(20, func() {
			f.PredictBatchInto(dst, X)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: PredictBatchInto allocates %.1f times per call; want 0", mode, allocs)
		}
		// Single-row Predict is allocation-free too (the classification
		// vote scratch lives on the stack).
		x := randomRow(rng)
		allocs = testing.AllocsPerRun(50, func() {
			f.Predict(x)
		})
		if allocs != 0 {
			t.Fatalf("mode %v: Predict allocates %.1f times per call; want 0", mode, allocs)
		}
	}
}
