package ml

import (
	"fmt"
	"math"
)

// Ridge is linear least-squares regression with L2 regularization,
// solved in closed form via the normal equations. It is the "LR" row of
// the paper's Table II: per-feature weights capture the disparity of
// significance between bit positions but cannot model interactions.
type Ridge struct {
	// Lambda is the L2 penalty (default 1e-6, effectively OLS with a
	// numerical safety net).
	Lambda float64

	w []float64 // weights, last entry is the intercept
}

// NewRidge returns an unfitted model.
func NewRidge(lambda float64) *Ridge {
	if lambda <= 0 {
		lambda = 1e-6
	}
	return &Ridge{Lambda: lambda}
}

// Fit solves (XᵀX + λI) w = Xᵀy with an implicit all-ones intercept
// column (the intercept is not regularized).
func (m *Ridge) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	d := len(X[0]) + 1 // + intercept
	// Accumulate the normal equations.
	a := make([][]float64, d) // XᵀX
	for i := range a {
		a[i] = make([]float64, d)
	}
	b := make([]float64, d) // Xᵀy
	row := make([]float64, d)
	for r, x := range X {
		copy(row, x)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			xi := row[i]
			if xi == 0 {
				continue
			}
			for j := i; j < d; j++ {
				a[i][j] += xi * row[j]
			}
			b[i] += xi * y[r]
		}
	}
	for i := 0; i < d; i++ {
		for j := 0; j < i; j++ {
			a[i][j] = a[j][i]
		}
	}
	for i := 0; i < d-1; i++ { // do not regularize the intercept
		a[i][i] += m.Lambda
	}
	w, err := solveLinear(a, b)
	if err != nil {
		return err
	}
	m.w = w
	return nil
}

// Predict returns wᵀx + intercept.
func (m *Ridge) Predict(x []float64) float64 {
	if m.w == nil {
		return 0
	}
	s := m.w[len(m.w)-1]
	for i, v := range x {
		s += m.w[i] * v
	}
	return s
}

// Weights returns the fitted weights (excluding the intercept).
func (m *Ridge) Weights() []float64 {
	if m.w == nil {
		return nil
	}
	return m.w[:len(m.w)-1]
}

// Intercept returns the fitted intercept.
func (m *Ridge) Intercept() float64 {
	if m.w == nil {
		return 0
	}
	return m.w[len(m.w)-1]
}

// solveLinear solves a·x = b by Gaussian elimination with partial
// pivoting; a and b are consumed.
func solveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		piv := col
		best := math.Abs(a[col][col])
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a[r][col]); v > best {
				piv, best = r, v
			}
		}
		if best < 1e-12 {
			return nil, fmt.Errorf("ml: singular normal-equation matrix at column %d", col)
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < n; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		s := b[r]
		for c := r + 1; c < n; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, nil
}
