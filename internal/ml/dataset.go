package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Dataset is a labeled sample matrix: one row per sample.
type Dataset struct {
	X [][]float64
	Y []float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Append adds one sample.
func (d *Dataset) Append(x []float64, y float64) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
}

// Shuffle permutes the dataset in place, deterministically for a seed.
func (d *Dataset) Shuffle(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(d.X), func(i, j int) {
		d.X[i], d.X[j] = d.X[j], d.X[i]
		d.Y[i], d.Y[j] = d.Y[j], d.Y[i]
	})
}

// Split partitions the dataset at a fraction (0 < frac < 1) into
// (train, test) views sharing the underlying rows.
func (d *Dataset) Split(frac float64) (train, test Dataset, err error) {
	if frac <= 0 || frac >= 1 {
		return Dataset{}, Dataset{}, fmt.Errorf("ml: split fraction %v outside (0,1)", frac)
	}
	n := int(float64(len(d.X)) * frac)
	if n == 0 || n == len(d.X) {
		return Dataset{}, Dataset{}, fmt.Errorf("ml: split of %d rows at %v leaves an empty side", len(d.X), frac)
	}
	train = Dataset{X: d.X[:n], Y: d.Y[:n]}
	test = Dataset{X: d.X[n:], Y: d.Y[n:]}
	return train, test, nil
}

// Scaler standardizes features to zero mean and unit variance; constant
// features pass through unchanged. Distance- and margin-based learners
// (k-NN, SVM) need it because raw features mix volts (~1), degrees
// (~100), and bits (0/1).
type Scaler struct {
	mean, std []float64
}

// FitScaler computes per-column statistics.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("ml: empty dataset for scaler")
	}
	d := len(X[0])
	s := &Scaler{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / n)
		if s.std[j] < 1e-12 {
			s.std[j] = 1 // constant column: identity transform
			s.mean[j] = 0
		}
	}
	return s, nil
}

// Transform returns a standardized copy of X.
func (s *Scaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.mean[j]) / s.std[j]
		}
		out[i] = r
	}
	return out
}

// TransformRow standardizes a single row.
func (s *Scaler) TransformRow(x []float64) []float64 {
	r := make([]float64, len(x))
	for j, v := range x {
		r[j] = (v - s.mean[j]) / s.std[j]
	}
	return r
}
