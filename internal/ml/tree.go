// Package ml is the from-scratch supervised-learning library used to
// train TEVoT: CART decision trees, random forests (the paper's chosen
// model), k-nearest neighbors, ridge ("linear") regression, and a linear
// SVM trained with the Pegasos subgradient method — the four methods
// compared in the paper's Table II — plus dataset utilities and metrics.
//
// All learners share the convention that feature vectors are []float64
// and labels are float64 (class labels are small non-negative integers
// stored in float64, exact below 2^53).
package ml

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Mode selects a tree's impurity criterion and leaf aggregation.
type Mode int

const (
	// Regression minimizes sum-of-squared-error; leaves predict the mean.
	Regression Mode = iota
	// Classification minimizes Gini impurity; leaves predict the
	// majority class.
	Classification
)

// TreeConfig controls decision-tree induction.
type TreeConfig struct {
	Mode Mode
	// MaxDepth limits tree depth; 0 means unlimited.
	MaxDepth int
	// MinLeaf is the minimum number of samples in a leaf (default 1).
	MinLeaf int
	// MaxFeatures is the number of features examined per split; 0 means
	// all features (the paper's stated scikit-learn default).
	MaxFeatures int
	// Quantiles caps the number of candidate thresholds per feature
	// (default 8). Features with fewer distinct values use exact
	// midpoints; binary features always get their single midpoint.
	Quantiles int
	// Seed drives the per-split feature subsampling when MaxFeatures > 0.
	Seed int64
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	if c.Quantiles <= 0 {
		c.Quantiles = 8
	}
	return c
}

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int32
	threshold float64
	left      int32 // index into nodes
	right     int32
	value     float64 // leaf prediction
}

// DecisionTree is a CART tree with histogram-style split search: split
// candidates are fixed per feature over the whole training set, and each
// node evaluates all of a feature's candidates in one pass.
type DecisionTree struct {
	cfg        TreeConfig
	nodes      []node
	classes    int       // for Classification: number of classes
	importance []float64 // per-feature accumulated impurity decrease
}

// NewDecisionTree returns an unfitted tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{cfg: cfg.withDefaults()}
}

// Fit builds the tree on the given samples. In Classification mode the
// labels must be small non-negative integers.
func (t *DecisionTree) Fit(X [][]float64, y []float64) error {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	return t.FitIndices(X, y, idx)
}

// FitIndices builds the tree on a subset of rows (indices may repeat, as
// in a bootstrap sample). The idx slice is consumed.
func (t *DecisionTree) FitIndices(X [][]float64, y []float64, idx []int) error {
	if len(idx) == 0 || len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	t.classes = 0
	if t.cfg.Mode == Classification {
		for _, i := range idx {
			v := y[i]
			if v < 0 || v != math.Trunc(v) {
				return fmt.Errorf("ml: classification label %v is not a non-negative integer", v)
			}
			if int(v)+1 > t.classes {
				t.classes = int(v) + 1
			}
		}
	}
	t.nodes = t.nodes[:0]
	t.importance = make([]float64, len(X[0]))
	b := &treeBuilder{
		t:   t,
		X:   X,
		y:   y,
		rng: rand.New(rand.NewSource(t.cfg.Seed)),
		ths: globalThresholds(X, idx, t.cfg.Quantiles),
	}
	nb := 0
	for _, f := range b.ths {
		if len(f)+1 > nb {
			nb = len(f) + 1
		}
	}
	b.bCount = make([]int, nb)
	b.bSum = make([]float64, nb)
	b.bSq = make([]float64, nb)
	if t.cfg.Mode == Classification {
		b.bClass = make([][]int, nb)
		for i := range b.bClass {
			b.bClass[i] = make([]int, t.classes)
		}
	}
	b.grow(idx, 0)
	return nil
}

// globalThresholds computes the per-feature split candidates once:
// midpoints between consecutive distinct values when there are few, else
// quantile midpoints. One scratch buffer serves every feature — raw
// values, distinct values, and midpoints all share its storage — and
// only the final candidate list is copied out, exactly sized, because
// ths outlives this call. (The old per-feature mids allocation sized a
// slice to the distinct-value count and then usually discarded it for a
// quantile-strided copy: per-feature garbage proportional to the
// training set.)
func globalThresholds(X [][]float64, idx []int, quantiles int) [][]float64 {
	nf := len(X[0])
	ths := make([][]float64, nf)
	scratch := make([]float64, 0, len(idx))
	for f := 0; f < nf; f++ {
		vals := scratch[:0]
		for _, i := range idx {
			vals = append(vals, X[i][f])
		}
		sort.Float64s(vals)
		// Distinct values, in place.
		distinct := vals[:0:len(vals)]
		prev := math.NaN()
		for _, v := range vals {
			if v != prev {
				distinct = append(distinct, v)
				prev = v
			}
		}
		if len(distinct) < 2 {
			continue
		}
		// Midpoints, in place over the distinct values: slot j-1 is
		// rewritten after it is read and before slot j is needed.
		mids := distinct[:len(distinct)-1]
		for j := 1; j < len(distinct); j++ {
			mids[j-1] = (distinct[j-1] + distinct[j]) / 2
		}
		if len(mids) > quantiles {
			strided := make([]float64, quantiles)
			for k := range strided {
				strided[k] = mids[k*len(mids)/quantiles]
			}
			ths[f] = strided
		} else {
			ths[f] = append([]float64(nil), mids...)
		}
	}
	return ths
}

// Predict returns the tree's output for one feature vector.
func (t *DecisionTree) Predict(x []float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	i := int32(0)
	for {
		n := &t.nodes[i]
		if n.feature < 0 {
			return n.value
		}
		if x[n.feature] <= n.threshold {
			i = n.left
		} else {
			i = n.right
		}
	}
}

// NumNodes reports the size of the fitted tree.
func (t *DecisionTree) NumNodes() int { return len(t.nodes) }

// Importance returns the per-feature accumulated impurity decrease of
// the fitted tree (unnormalized). The slice is owned by the tree.
func (t *DecisionTree) Importance() []float64 { return t.importance }

// Depth reports the fitted tree's depth (a leaf-only tree has depth 0).
func (t *DecisionTree) Depth() int {
	if len(t.nodes) == 0 {
		return 0
	}
	var walk func(i int32) int
	walk = func(i int32) int {
		n := &t.nodes[i]
		if n.feature < 0 {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if r > l {
			l = r
		}
		return l + 1
	}
	return walk(0)
}

type treeBuilder struct {
	t   *DecisionTree
	X   [][]float64
	y   []float64
	rng *rand.Rand
	ths [][]float64 // global per-feature candidates

	bCount []int
	bSum   []float64
	bSq    []float64
	bClass [][]int
}

// grow recursively builds the subtree over idx and returns its node index.
func (b *treeBuilder) grow(idx []int, depth int) int32 {
	t := b.t
	cfg := t.cfg

	leafValue, impurity := b.leafStats(idx)
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, node{feature: -1, value: leafValue})

	if impurity <= 1e-12 || len(idx) < 2*cfg.MinLeaf ||
		(cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) {
		return self
	}

	feat, thr, gain := b.bestSplit(idx, impurity)
	if feat < 0 || gain <= 1e-12 {
		return self
	}
	t.importance[feat] += gain

	// Partition in place.
	lo, hi := 0, len(idx)
	for lo < hi {
		if b.X[idx[lo]][feat] <= thr {
			lo++
		} else {
			hi--
			idx[lo], idx[hi] = idx[hi], idx[lo]
		}
	}
	if lo < cfg.MinLeaf || len(idx)-lo < cfg.MinLeaf {
		return self
	}

	left := b.grow(idx[:lo], depth+1)
	right := b.grow(idx[lo:], depth+1)
	t.nodes[self] = node{feature: int32(feat), threshold: thr, left: left, right: right, value: leafValue}
	return self
}

// leafStats returns the leaf prediction and the node impurity (SSE for
// regression, count-scaled Gini for classification).
func (b *treeBuilder) leafStats(idx []int) (value, impurity float64) {
	if b.t.cfg.Mode == Regression {
		var sum, sumsq float64
		for _, i := range idx {
			v := b.y[i]
			sum += v
			sumsq += v * v
		}
		n := float64(len(idx))
		mean := sum / n
		sse := sumsq - sum*mean
		if sse < 0 {
			sse = 0 // numerical guard
		}
		return mean, sse
	}
	counts := make([]int, b.t.classes)
	for _, i := range idx {
		counts[int(b.y[i])]++
	}
	best, bestN := 0, -1
	sumSq := 0.0
	n := float64(len(idx))
	for c, k := range counts {
		if k > bestN {
			best, bestN = c, k
		}
		p := float64(k) / n
		sumSq += p * p
	}
	return float64(best), (1 - sumSq) * n
}

// bestSplit scans (a subset of) features for the split with the largest
// impurity decrease, evaluating all of a feature's candidate thresholds
// in one bucketing pass.
func (b *treeBuilder) bestSplit(idx []int, parent float64) (feat int, thr, gain float64) {
	feat = -1
	for _, f := range b.featureOrder(len(b.X[0])) {
		ths := b.ths[f]
		if len(ths) == 0 {
			continue
		}
		var g, tv float64
		var ok bool
		if b.t.cfg.Mode == Regression {
			g, tv, ok = b.scanRegression(idx, f, ths, parent)
		} else {
			g, tv, ok = b.scanGini(idx, f, ths, parent)
		}
		if ok && g > gain {
			feat, thr, gain = f, tv, g
		}
	}
	return feat, thr, gain
}

// featureOrder returns all features, or a random subset of MaxFeatures.
func (b *treeBuilder) featureOrder(nf int) []int {
	mf := b.t.cfg.MaxFeatures
	if mf <= 0 || mf >= nf {
		all := make([]int, nf)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return b.rng.Perm(nf)[:mf]
}

// bucketOf locates the bucket of v among thresholds ths: the number of
// thresholds strictly below v... bucket k holds values in
// (ths[k-1], ths[k]].
func bucketOf(v float64, ths []float64) int {
	k := 0
	for k < len(ths) && v > ths[k] {
		k++
	}
	return k
}

// scanRegression buckets the node's samples once and sweeps the buckets
// to find the best SSE-decreasing threshold of feature f.
func (b *treeBuilder) scanRegression(idx []int, f int, ths []float64, parent float64) (gain, thr float64, ok bool) {
	nb := len(ths) + 1
	for k := 0; k < nb; k++ {
		b.bCount[k] = 0
		b.bSum[k] = 0
		b.bSq[k] = 0
	}
	for _, i := range idx {
		k := bucketOf(b.X[i][f], ths)
		v := b.y[i]
		b.bCount[k]++
		b.bSum[k] += v
		b.bSq[k] += v * v
	}
	var totSum, totSq float64
	tot := 0
	for k := 0; k < nb; k++ {
		tot += b.bCount[k]
		totSum += b.bSum[k]
		totSq += b.bSq[k]
	}
	var nL int
	var sumL, sqL float64
	minLeaf := b.t.cfg.MinLeaf
	for k := 0; k < len(ths); k++ {
		nL += b.bCount[k]
		sumL += b.bSum[k]
		sqL += b.bSq[k]
		nR := tot - nL
		if nL < minLeaf || nR < minLeaf {
			continue
		}
		sumR := totSum - sumL
		sqR := totSq - sqL
		sseL := sqL - sumL*sumL/float64(nL)
		sseR := sqR - sumR*sumR/float64(nR)
		if g := parent - sseL - sseR; g > gain {
			gain, thr, ok = g, ths[k], true
		}
	}
	return gain, thr, ok
}

// scanGini is scanRegression's classification counterpart.
func (b *treeBuilder) scanGini(idx []int, f int, ths []float64, parent float64) (gain, thr float64, ok bool) {
	nb := len(ths) + 1
	kcls := b.t.classes
	for k := 0; k < nb; k++ {
		b.bCount[k] = 0
		cl := b.bClass[k]
		for c := range cl {
			cl[c] = 0
		}
	}
	for _, i := range idx {
		k := bucketOf(b.X[i][f], ths)
		b.bCount[k]++
		b.bClass[k][int(b.y[i])]++
	}
	tot := 0
	totClass := make([]int, kcls)
	for k := 0; k < nb; k++ {
		tot += b.bCount[k]
		for c := 0; c < kcls; c++ {
			totClass[c] += b.bClass[k][c]
		}
	}
	nL := 0
	classL := make([]int, kcls)
	minLeaf := b.t.cfg.MinLeaf
	gini := func(counts []int, n int, sub []int) float64 {
		s := 0.0
		fn := float64(n)
		for c := range counts {
			var k int
			if sub == nil {
				k = counts[c]
			} else {
				k = counts[c] - sub[c]
			}
			p := float64(k) / fn
			s += p * p
		}
		return (1 - s) * fn
	}
	for k := 0; k < len(ths); k++ {
		nL += b.bCount[k]
		for c := 0; c < kcls; c++ {
			classL[c] += b.bClass[k][c]
		}
		nR := tot - nL
		if nL < minLeaf || nR < minLeaf {
			continue
		}
		g := parent - gini(classL, nL, nil) - gini(totClass, nR, classL)
		if g > gain {
			gain, thr, ok = g, ths[k], true
		}
	}
	return gain, thr, ok
}
