package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthRegression builds y = 3*x0 - 2*x1 + noise-free step on x2.
func synthRegression(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.Float64(), rng.Float64(), float64(rng.Intn(2))}
		X[i] = x
		y[i] = 3*x[0] - 2*x[1]
		if x[2] == 1 {
			y[i] += 5
		}
	}
	return X, y
}

// synthXOR builds the classic interaction problem linear models cannot
// solve: class = x0 XOR x1.
func synthXOR(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		a, b := float64(rng.Intn(2)), float64(rng.Intn(2))
		X[i] = []float64{a, b, rng.Float64()} // third column is noise
		if a != b {
			y[i] = 1
		}
	}
	return X, y
}

func TestDecisionTreeRegressionFitsTrainingSet(t *testing.T) {
	X, y := synthRegression(500, 1)
	tr := NewDecisionTree(TreeConfig{Mode: Regression})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(X))
	for i := range X {
		pred[i] = tr.Predict(X[i])
	}
	mse, err := MSE(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if mse > 0.05 {
		t.Errorf("unpruned tree training MSE = %v, want near 0", mse)
	}
}

func TestDecisionTreeClassificationXOR(t *testing.T) {
	X, y := synthXOR(400, 2)
	tr := NewDecisionTree(TreeConfig{Mode: Classification})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synthXOR(200, 3)
	pred := make([]float64, len(Xt))
	for i := range Xt {
		pred[i] = tr.Predict(Xt[i])
	}
	acc, err := Accuracy(pred, yt)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.99 {
		t.Errorf("tree XOR accuracy = %v, want ~1 (trees model interactions)", acc)
	}
}

func TestTreeMaxDepthRespected(t *testing.T) {
	X, y := synthRegression(500, 4)
	tr := NewDecisionTree(TreeConfig{Mode: Regression, MaxDepth: 3})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("depth = %d, want <= 3", d)
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	X, y := synthRegression(200, 5)
	tr := NewDecisionTree(TreeConfig{Mode: Regression, MinLeaf: 50})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf=50 over 200 samples the tree can have at most 4 leaves.
	if n := tr.NumNodes(); n > 7 {
		t.Errorf("tree has %d nodes; MinLeaf=50 over 200 rows allows at most 7", n)
	}
}

func TestTreeRejectsBadLabels(t *testing.T) {
	tr := NewDecisionTree(TreeConfig{Mode: Classification})
	if err := tr.Fit([][]float64{{1}, {2}}, []float64{0, 1.5}); err == nil {
		t.Fatal("accepted fractional class label")
	}
	if err := tr.Fit([][]float64{{1}}, []float64{-1}); err == nil {
		t.Fatal("accepted negative class label")
	}
	if err := tr.Fit(nil, nil); err == nil {
		t.Fatal("accepted empty training set")
	}
	if err := tr.Fit([][]float64{{1}}, []float64{0, 1}); err == nil {
		t.Fatal("accepted mismatched lengths")
	}
}

func TestForestRegressionBeatsSingleTreeOOB(t *testing.T) {
	X, y := synthRegression(600, 6)
	// Add label noise so a single deep tree overfits.
	rng := rand.New(rand.NewSource(7))
	for i := range y {
		y[i] += rng.NormFloat64() * 0.5
	}
	Xt, yt := synthRegression(300, 8)

	tree := NewDecisionTree(TreeConfig{Mode: Regression})
	if err := tree.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	forest := NewRandomForest(DefaultForestConfig(Regression))
	if err := forest.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var treeMSE, forestMSE float64
	for i := range Xt {
		d1 := tree.Predict(Xt[i]) - yt[i]
		d2 := forest.Predict(Xt[i]) - yt[i]
		treeMSE += d1 * d1
		forestMSE += d2 * d2
	}
	if forestMSE >= treeMSE {
		t.Errorf("forest test MSE (%v) should beat single tree (%v) under label noise",
			forestMSE/float64(len(Xt)), treeMSE/float64(len(Xt)))
	}
}

func TestForestDeterministicAcrossWorkerCounts(t *testing.T) {
	X, y := synthXOR(300, 9)
	f1 := NewRandomForest(ForestConfig{Trees: 5, Tree: TreeConfig{Mode: Classification}, Bootstrap: true, Seed: 3, Workers: 1})
	f2 := NewRandomForest(ForestConfig{Trees: 5, Tree: TreeConfig{Mode: Classification}, Bootstrap: true, Seed: 3, Workers: 4})
	if err := f1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := f2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, _ := synthXOR(100, 10)
	for i := range Xt {
		if f1.Predict(Xt[i]) != f2.Predict(Xt[i]) {
			t.Fatalf("row %d: forest prediction differs across worker counts", i)
		}
	}
}

func TestForestPredictBatchMatchesPredict(t *testing.T) {
	X, y := synthRegression(300, 11)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	batch := f.PredictBatch(X[:50])
	for i := 0; i < 50; i++ {
		if batch[i] != f.Predict(X[i]) {
			t.Fatalf("row %d: batch %v != single %v", i, batch[i], f.Predict(X[i]))
		}
	}
}

func TestKNNRegression(t *testing.T) {
	X, y := synthRegression(500, 12)
	m := NewKNN(5, Regression)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synthRegression(100, 13)
	var mse float64
	for i := range Xt {
		d := m.Predict(Xt[i]) - yt[i]
		mse += d * d
	}
	mse /= float64(len(Xt))
	if mse > 1.0 {
		t.Errorf("kNN regression MSE = %v, want < 1", mse)
	}
}

func TestKNNClassificationXOR(t *testing.T) {
	X, y := synthXOR(400, 14)
	m := NewKNN(7, Classification)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synthXOR(200, 15)
	pred := m.PredictBatch(Xt)
	acc, err := Accuracy(pred, yt)
	if err != nil {
		t.Fatal(err)
	}
	// Local neighborhoods solve XOR when the noise column doesn't
	// dominate; demand clearly-above-chance performance.
	if acc < 0.9 {
		t.Errorf("kNN XOR accuracy = %v, want >= 0.9", acc)
	}
}

func TestKNNExactNeighbor(t *testing.T) {
	X := [][]float64{{0, 0}, {1, 1}, {5, 5}}
	y := []float64{1, 2, 3}
	m := NewKNN(1, Regression)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X {
		if got := m.Predict(X[i]); got != y[i] {
			t.Errorf("1-NN on training point %d = %v, want %v", i, got, y[i])
		}
	}
}

func TestRidgeRecoversLinearModel(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	n := 1000
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		X[i] = x
		y[i] = 2*x[0] - 3*x[1] + 0.5*x[2] + 7
	}
	m := NewRidge(1e-8)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	w := m.Weights()
	want := []float64{2, -3, 0.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-6 {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
	if math.Abs(m.Intercept()-7) > 1e-6 {
		t.Errorf("intercept = %v, want 7", m.Intercept())
	}
}

func TestRidgeCannotSolveXOR(t *testing.T) {
	X, y := synthXOR(600, 17)
	m := NewRidge(1e-6)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	pred := make([]float64, len(X))
	for i := range X {
		if m.Predict(X[i]) >= 0.5 {
			pred[i] = 1
		}
	}
	acc, err := Accuracy(pred, y)
	if err != nil {
		t.Fatal(err)
	}
	if acc > 0.75 {
		t.Errorf("linear model on XOR = %v accuracy; should be near chance", acc)
	}
}

func TestSVMLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	n := 800
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		X[i] = x
		if x[0]+x[1] > 0.3 {
			y[i] = 1
		}
	}
	m := NewSVM(1e-4, 30, 19)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Errorf("SVM separable accuracy = %v, want >= 0.95", acc)
	}
}

func TestSVMRejectsNonBinaryLabels(t *testing.T) {
	m := NewSVM(0, 0, 0)
	if err := m.Fit([][]float64{{1}}, []float64{2}); err == nil {
		t.Fatal("SVM accepted label 2")
	}
}

func TestScalerStandardizes(t *testing.T) {
	X := [][]float64{{1, 100, 5}, {3, 300, 5}, {5, 500, 5}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	out := s.Transform(X)
	for j := 0; j < 2; j++ {
		var mean, sq float64
		for i := range out {
			mean += out[i][j]
		}
		mean /= 3
		for i := range out {
			d := out[i][j] - mean
			sq += d * d
		}
		std := math.Sqrt(sq / 3)
		if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
			t.Errorf("column %d: mean %v std %v after scaling", j, mean, std)
		}
	}
	// Constant column passes through.
	for i := range out {
		if out[i][2] != 5 {
			t.Errorf("constant column changed: %v", out[i][2])
		}
	}
}

func TestDatasetSplitAndShuffle(t *testing.T) {
	var d Dataset
	for i := 0; i < 100; i++ {
		d.Append([]float64{float64(i)}, float64(i))
	}
	d.Shuffle(1)
	train, test, err := d.Split(0.8)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 80 || test.Len() != 20 {
		t.Fatalf("split sizes %d/%d, want 80/20", train.Len(), test.Len())
	}
	seen := make(map[float64]bool)
	for _, v := range d.Y {
		seen[v] = true
	}
	if len(seen) != 100 {
		t.Fatal("shuffle lost samples")
	}
	if _, _, err := d.Split(0); err == nil {
		t.Fatal("Split(0) succeeded")
	}
	if _, _, err := d.Split(1); err == nil {
		t.Fatal("Split(1) succeeded")
	}
}

func TestMetrics(t *testing.T) {
	acc, err := Accuracy([]float64{1, 0, 1, 1}, []float64{1, 0, 0, 1})
	if err != nil || acc != 0.75 {
		t.Errorf("Accuracy = %v, %v; want 0.75", acc, err)
	}
	mse, err := MSE([]float64{1, 2}, []float64{3, 2})
	if err != nil || mse != 2 {
		t.Errorf("MSE = %v, %v; want 2", mse, err)
	}
	mae, err := MAE([]float64{1, 2}, []float64{3, 2})
	if err != nil || mae != 1 {
		t.Errorf("MAE = %v, %v; want 1", mae, err)
	}
	r2, err := R2([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || r2 != 1 {
		t.Errorf("perfect R2 = %v, %v; want 1", r2, err)
	}
	c, err := ConfusionBool([]bool{true, true, false, false}, []bool{true, false, false, true})
	if err != nil {
		t.Fatal(err)
	}
	if c.TP != 1 || c.FP != 1 || c.TN != 1 || c.FN != 1 {
		t.Errorf("confusion = %+v", c)
	}
	if c.Accuracy() != 0.5 {
		t.Errorf("confusion accuracy = %v", c.Accuracy())
	}
	if _, err := Accuracy([]float64{1}, []float64{}); err == nil {
		t.Error("Accuracy accepted mismatched lengths")
	}
}

// TestForestPredictionWithinLabelHull: a regression forest's prediction
// is a mean of training labels, so it must stay inside their range.
func TestForestPredictionWithinLabelHull(t *testing.T) {
	X, y := synthRegression(300, 20)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range y {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	prop := func(a, b, c float64) bool {
		p := f.Predict([]float64{math.Abs(a), math.Abs(b), math.Mod(math.Abs(c), 2)})
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTreePredictionIdempotent: same input, same output (pure function).
func TestTreePredictionIdempotent(t *testing.T) {
	X, y := synthRegression(200, 21)
	tr := NewDecisionTree(TreeConfig{Mode: Regression})
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c float64) bool {
		x := []float64{a, b, c}
		return tr.Predict(x) == tr.Predict(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
