package ml

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Serialization mirrors the unexported tree structures through exported
// DTOs so trained models can be shipped (the paper: "We will open-source
// the pre-trained models for research community").

type nodeDTO struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
}

type treeDTO struct {
	Cfg        TreeConfig
	Classes    int
	Nodes      []nodeDTO
	Importance []float64
}

type forestDTO struct {
	Version int
	Cfg     ForestConfig
	Trees   []treeDTO
}

const forestFormatVersion = 1

func (t *DecisionTree) toDTO() treeDTO {
	dto := treeDTO{Cfg: t.cfg, Classes: t.classes, Nodes: make([]nodeDTO, len(t.nodes)), Importance: t.importance}
	for i, n := range t.nodes {
		dto.Nodes[i] = nodeDTO{n.feature, n.threshold, n.left, n.right, n.value}
	}
	return dto
}

func treeFromDTO(dto treeDTO) (*DecisionTree, error) {
	if len(dto.Nodes) == 0 {
		return nil, fmt.Errorf("ml: corrupt tree: no nodes")
	}
	t := &DecisionTree{cfg: dto.Cfg, classes: dto.Classes, nodes: make([]node, len(dto.Nodes)), importance: dto.Importance}
	for i, n := range dto.Nodes {
		if n.Feature >= 0 {
			// The builder appends children after their parent, so any
			// valid tree has strictly increasing child indices. Enforcing
			// that on load guarantees the tree is acyclic — a crafted or
			// corrupted DTO cannot make Predict loop forever.
			if int(n.Left) >= len(dto.Nodes) || int(n.Right) >= len(dto.Nodes) ||
				n.Left <= int32(i) || n.Right <= int32(i) {
				return nil, fmt.Errorf("ml: corrupt tree: node %d children out of range", i)
			}
			if int(n.Feature) >= len(dto.Importance) && len(dto.Importance) > 0 {
				return nil, fmt.Errorf("ml: corrupt tree: node %d feature %d outside importance vector", i, n.Feature)
			}
		}
		t.nodes[i] = node{n.Feature, n.Threshold, n.Left, n.Right, n.Value}
	}
	return t, nil
}

// Save serializes the fitted forest with encoding/gob.
func (f *RandomForest) Save(w io.Writer) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("ml: cannot save an unfitted forest")
	}
	dto := forestDTO{Version: forestFormatVersion, Cfg: f.cfg, Trees: make([]treeDTO, len(f.trees))}
	for i, t := range f.trees {
		dto.Trees[i] = t.toDTO()
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadForest deserializes a forest saved with Save. Corrupted input
// yields an error, never a panic: gob's panics on malformed streams are
// recovered, and the decoded trees are structurally validated so a
// damaged forest cannot send Predict out of range or into a cycle.
func LoadForest(r io.Reader) (f *RandomForest, err error) {
	defer func() {
		if p := recover(); p != nil {
			f, err = nil, fmt.Errorf("ml: corrupt forest data: %v", p)
		}
	}()
	var dto forestDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return nil, fmt.Errorf("ml: decoding forest: %w", err)
	}
	if dto.Version != forestFormatVersion {
		return nil, fmt.Errorf("ml: unsupported forest format version %d", dto.Version)
	}
	if len(dto.Trees) == 0 {
		return nil, fmt.Errorf("ml: saved forest has no trees")
	}
	f = &RandomForest{cfg: dto.Cfg, trees: make([]*DecisionTree, len(dto.Trees))}
	for i, td := range dto.Trees {
		t, err := treeFromDTO(td)
		if err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	// Pack the loaded ensemble into the flat inference arena, exactly as
	// Fit does, so a shipped model predicts at full speed.
	f.flat = flatten(f.trees, f.cfg.Tree.Mode)
	return f, nil
}
