package ml

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
)

// Serialization mirrors the unexported tree structures through exported
// DTOs so trained models can be shipped (the paper: "We will open-source
// the pre-trained models for research community").

type nodeDTO struct {
	Feature   int32
	Threshold float64
	Left      int32
	Right     int32
	Value     float64
}

type treeDTO struct {
	Cfg        TreeConfig
	Classes    int
	Nodes      []nodeDTO
	Importance []float64
}

type forestDTO struct {
	Version int
	Cfg     ForestConfig
	Trees   []treeDTO
}

const forestFormatVersion = 1

// Decode-side resource caps. Model files come over trust boundaries —
// shipped checkpoints, operator uploads, and tevot-serve's /admin/reload
// endpoint — so the loader must bound what a hostile stream can make it
// allocate. MaxForestBytes caps the bytes the gob decoder may consume
// (gob's own claimed-length-vs-input check then bounds any single slice
// allocation to the same budget); the count caps below reject forests
// that are structurally absurd even when they fit the byte budget.
const (
	// MaxForestBytes is the largest serialized forest LoadForest will
	// read. The paper's 10-tree regression forests are a few MiB; 64 MiB
	// leaves two orders of magnitude of headroom.
	MaxForestBytes int64 = 64 << 20
	// maxForestTrees bounds the ensemble size on load.
	maxForestTrees = 4096
	// maxForestNodes bounds the total node count across the ensemble.
	maxForestNodes = 8 << 20
)

// errForestTooLarge reports a stream that ran past MaxForestBytes.
var errForestTooLarge = fmt.Errorf("ml: serialized forest exceeds the %d MiB size cap", MaxForestBytes>>20)

// cappedReader fails any read past its budget, so a decoder driven by a
// decompression-bomb-style stream stops at the cap instead of
// allocating without bound. It implements io.ByteReader so gob does not
// wrap it in a bufio.Reader: the forest is the tail of a chained model
// stream, and readahead past it would corrupt any decoder that follows.
type cappedReader struct {
	r         io.Reader
	remaining int64
	errCap    error
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, c.errCap
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cappedReader) ReadByte() (byte, error) {
	var b [1]byte
	for {
		n, err := c.Read(b[:])
		if n == 1 {
			return b[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

func (t *DecisionTree) toDTO() treeDTO {
	dto := treeDTO{Cfg: t.cfg, Classes: t.classes, Nodes: make([]nodeDTO, len(t.nodes)), Importance: t.importance}
	for i, n := range t.nodes {
		dto.Nodes[i] = nodeDTO{n.feature, n.threshold, n.left, n.right, n.value}
	}
	return dto
}

func treeFromDTO(dto treeDTO) (*DecisionTree, error) {
	if len(dto.Nodes) == 0 {
		return nil, fmt.Errorf("ml: corrupt tree: no nodes")
	}
	t := &DecisionTree{cfg: dto.Cfg, classes: dto.Classes, nodes: make([]node, len(dto.Nodes)), importance: dto.Importance}
	for i, n := range dto.Nodes {
		if n.Feature >= 0 {
			// The builder appends children after their parent, so any
			// valid tree has strictly increasing child indices. Enforcing
			// that on load guarantees the tree is acyclic — a crafted or
			// corrupted DTO cannot make Predict loop forever.
			if int(n.Left) >= len(dto.Nodes) || int(n.Right) >= len(dto.Nodes) ||
				n.Left <= int32(i) || n.Right <= int32(i) {
				return nil, fmt.Errorf("ml: corrupt tree: node %d children out of range", i)
			}
			if int(n.Feature) >= len(dto.Importance) && len(dto.Importance) > 0 {
				return nil, fmt.Errorf("ml: corrupt tree: node %d feature %d outside importance vector", i, n.Feature)
			}
		}
		t.nodes[i] = node{n.Feature, n.Threshold, n.Left, n.Right, n.Value}
	}
	return t, nil
}

// Save serializes the fitted forest with encoding/gob.
func (f *RandomForest) Save(w io.Writer) error {
	if len(f.trees) == 0 {
		return fmt.Errorf("ml: cannot save an unfitted forest")
	}
	dto := forestDTO{Version: forestFormatVersion, Cfg: f.cfg, Trees: make([]treeDTO, len(f.trees))}
	for i, t := range f.trees {
		dto.Trees[i] = t.toDTO()
	}
	return gob.NewEncoder(w).Encode(dto)
}

// LoadForest deserializes a forest saved with Save. Corrupted input
// yields an error, never a panic: gob's panics on malformed streams are
// recovered, the stream is capped at MaxForestBytes so a hostile input
// cannot drive unbounded allocation, and the decoded trees are
// structurally validated (node/tree count caps, child-index ordering)
// so a damaged forest cannot send Predict out of range or into a cycle.
func LoadForest(r io.Reader) (f *RandomForest, err error) {
	defer func() {
		if p := recover(); p != nil {
			f, err = nil, fmt.Errorf("ml: corrupt forest data: %v", p)
		}
	}()
	var dto forestDTO
	cr := &cappedReader{r: r, remaining: MaxForestBytes, errCap: errForestTooLarge}
	if err := gob.NewDecoder(cr).Decode(&dto); err != nil {
		if errors.Is(err, errForestTooLarge) {
			return nil, errForestTooLarge
		}
		return nil, fmt.Errorf("ml: decoding forest: %w", err)
	}
	if dto.Version != forestFormatVersion {
		return nil, fmt.Errorf("ml: unsupported forest format version %d", dto.Version)
	}
	if len(dto.Trees) == 0 {
		return nil, fmt.Errorf("ml: saved forest has no trees")
	}
	if len(dto.Trees) > maxForestTrees {
		return nil, fmt.Errorf("ml: saved forest has %d trees (cap %d)", len(dto.Trees), maxForestTrees)
	}
	totalNodes := 0
	for _, td := range dto.Trees {
		totalNodes += len(td.Nodes)
	}
	if totalNodes > maxForestNodes {
		return nil, fmt.Errorf("ml: saved forest has %d nodes (cap %d)", totalNodes, maxForestNodes)
	}
	f = &RandomForest{cfg: dto.Cfg, trees: make([]*DecisionTree, len(dto.Trees))}
	for i, td := range dto.Trees {
		t, err := treeFromDTO(td)
		if err != nil {
			return nil, err
		}
		f.trees[i] = t
	}
	// Pack the loaded ensemble into the flat inference arena, exactly as
	// Fit does, so a shipped model predicts at full speed.
	f.flat = flatten(f.trees, f.cfg.Tree.Mode)
	return f, nil
}
