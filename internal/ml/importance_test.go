package ml

import (
	"bytes"
	"math"
	"testing"
)

// TestImportanceFindsInformativeFeatures: for y driven entirely by x0
// and x2, the importance mass must land on those columns.
func TestImportanceFindsInformativeFeatures(t *testing.T) {
	X, y := synthRegression(600, 50) // y = 3*x0 - 2*x1 + 5*step(x2)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	if len(imp) != 3 {
		t.Fatalf("importance has %d entries, want 3", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("importance sums to %v, want 1", sum)
	}
	// x2 (the +5 step) carries the largest single effect.
	if imp[2] < imp[1] {
		t.Errorf("step feature importance (%v) should exceed the weakest linear one (%v); imp=%v",
			imp[2], imp[1], imp)
	}
}

// TestImportanceIgnoresNoise: a pure-noise column should get (almost) no
// importance relative to the signal columns.
func TestImportanceIgnoresNoise(t *testing.T) {
	X, y := synthXOR(500, 51) // third column is uniform noise
	f := NewRandomForest(DefaultForestConfig(Classification))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	imp := f.Importance()
	if imp[2] > imp[0] || imp[2] > imp[1] {
		t.Errorf("noise column importance %v exceeds signal columns %v, %v", imp[2], imp[0], imp[1])
	}
}

func TestImportanceUnfittedNil(t *testing.T) {
	f := NewRandomForest(DefaultForestConfig(Regression))
	if f.Importance() != nil {
		t.Error("unfitted forest should report nil importance")
	}
}

func TestImportanceSurvivesPersistence(t *testing.T) {
	X, y := synthRegression(300, 52)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	want := f.Importance()
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Importance()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("importance[%d] changed after round trip", i)
		}
	}
}
