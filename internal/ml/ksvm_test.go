package ml

import (
	"math/rand"
	"testing"
)

func TestKernelSVMLinearlySeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		X[i] = x
		if x[0]+x[1] > 0 {
			y[i] = 1
		}
	}
	m := NewKernelSVM(1, 0, 1)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range X {
		if m.Predict(X[i]) == y[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(n); acc < 0.95 {
		t.Errorf("separable accuracy = %v, want >= 0.95", acc)
	}
	if m.NumSupportVectors() == 0 {
		t.Error("no support vectors after training")
	}
}

// TestKernelSVMSolvesXOR: the RBF kernel handles the interaction problem
// that defeats the linear SVM — the reason "SVM" scores well in the
// paper's Table II despite learning no explicit feature interactions.
func TestKernelSVMSolvesXOR(t *testing.T) {
	X, y := synthXOR(300, 41)
	m := NewKernelSVM(5, 1, 2)
	if err := m.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := synthXOR(150, 42)
	correct := 0
	for i := range Xt {
		if m.Predict(Xt[i]) == yt[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(Xt)); acc < 0.85 {
		t.Errorf("XOR accuracy = %v, want >= 0.85 (RBF kernels model interactions)", acc)
	}
}

func TestKernelSVMRejectsBadLabels(t *testing.T) {
	m := NewKernelSVM(1, 0, 0)
	if err := m.Fit([][]float64{{1}}, []float64{0.5}); err == nil {
		t.Fatal("accepted non-binary label")
	}
	if err := m.Fit(nil, nil); err == nil {
		t.Fatal("accepted empty training set")
	}
}

func TestKernelSVMDeterministic(t *testing.T) {
	X, y := synthXOR(150, 43)
	m1 := NewKernelSVM(1, 1, 7)
	m2 := NewKernelSVM(1, 1, 7)
	if err := m1.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if err := m2.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	for i := range X[:40] {
		if m1.Decision(X[i]) != m2.Decision(X[i]) {
			t.Fatal("same-seed training diverged")
		}
	}
}
