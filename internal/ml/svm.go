package ml

import (
	"fmt"
	"math/rand"
)

// SVM is a linear support-vector classifier trained with the Pegasos
// primal subgradient method. Labels are binary classes {0, 1}. Like the
// paper's SVM it learns per-feature weights but no feature interactions,
// and its training cost dominates the Table II comparison.
type SVM struct {
	// Lambda is the regularization strength (default 1e-4).
	Lambda float64
	// Epochs is the number of passes over the data (default 20).
	Epochs int
	// Seed drives the sampling order.
	Seed int64

	w    []float64
	bias float64
}

// NewSVM returns an unfitted classifier.
func NewSVM(lambda float64, epochs int, seed int64) *SVM {
	if lambda <= 0 {
		lambda = 1e-4
	}
	if epochs <= 0 {
		epochs = 20
	}
	return &SVM{Lambda: lambda, Epochs: epochs, Seed: seed}
}

// Fit trains on labels in {0, 1}.
func (m *SVM) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	for _, v := range y {
		if v != 0 && v != 1 {
			return fmt.Errorf("ml: SVM requires labels in {0,1}, got %v", v)
		}
	}
	d := len(X[0])
	w := make([]float64, d)
	var bias float64
	rng := rand.New(rand.NewSource(m.Seed))
	n := len(X)
	t := 0
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for it := 0; it < n; it++ {
			t++
			i := rng.Intn(n)
			eta := 1 / (m.Lambda * float64(t))
			yi := 2*y[i] - 1 // {0,1} -> {-1,+1}
			margin := bias
			xi := X[i]
			for j, v := range xi {
				margin += w[j] * v
			}
			// w <- (1 - eta*lambda) w [+ eta*yi*xi if margin violated]
			decay := 1 - eta*m.Lambda
			if decay < 0 {
				decay = 0
			}
			for j := range w {
				w[j] *= decay
			}
			if yi*margin < 1 {
				for j, v := range xi {
					w[j] += eta * yi * v
				}
				bias += eta * yi * 0.1 // unregularized, damped bias update
			}
		}
	}
	m.w, m.bias = w, bias
	return nil
}

// Predict returns the class {0, 1}.
func (m *SVM) Predict(x []float64) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// Decision returns the signed margin wᵀx + b.
func (m *SVM) Decision(x []float64) float64 {
	s := m.bias
	for i, v := range x {
		s += m.w[i] * v
	}
	return s
}
