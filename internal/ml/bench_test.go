package ml

import (
	"math/rand"
	"testing"
)

// benchData builds a TEVoT-shaped dataset: 128 binary features plus two
// low-cardinality continuous columns, delay-like labels.
func benchData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, 130)
		for j := 0; j < 128; j++ {
			x[j] = float64(rng.Intn(2))
		}
		x[128] = 0.81 + float64(rng.Intn(20))*0.01
		x[129] = float64(rng.Intn(5)) * 25
		X[i] = x
		// Label: magnitude-like function of the top operand bits, scaled
		// by a corner factor.
		v := 0.0
		for j := 24; j < 32; j++ {
			v += x[j] * float64(j)
		}
		y[i] = (100 + 20*v) * (2 - x[128])
	}
	return X, y
}

func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(5000, 1)
	cfg := DefaultForestConfig(Regression)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewRandomForest(cfg)
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(5000, 2)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

// BenchmarkForestPredictBatch measures batched inference through the
// flat node arena — the model-side hot path. The rows/s metric is what
// scripts/benchdiff.sh tracks; the Into variant must stay at 0 allocs.
func BenchmarkForestPredictBatch(b *testing.B) {
	X, y := benchData(5000, 2)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.Run("alloc", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.PredictBatch(X)
		}
		b.ReportMetric(float64(len(X))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("into", func(b *testing.B) {
		dst := make([]float64, len(X))
		// The inline (single-worker) walk must be allocation-free; the
		// goroutine fan-out above it may allocate on multicore machines.
		if allocs := testing.AllocsPerRun(5, func() {
			f.flat.predictRange(X, dst, 0, len(X))
		}); allocs != 0 {
			b.Fatalf("inline batched predict allocates %.1f/op; want 0", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.PredictBatchInto(dst, X)
		}
		b.ReportMetric(float64(len(X))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := benchData(5000, 3)
	m := NewKNN(5, Regression)
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkRidgeFit(b *testing.B) {
	X, y := benchData(5000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewRidge(1e-6)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
