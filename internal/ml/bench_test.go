package ml

import (
	"math/rand"
	"testing"
)

// benchData builds a TEVoT-shaped dataset: 128 binary features plus two
// low-cardinality continuous columns, delay-like labels.
func benchData(n int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := make([]float64, 130)
		for j := 0; j < 128; j++ {
			x[j] = float64(rng.Intn(2))
		}
		x[128] = 0.81 + float64(rng.Intn(20))*0.01
		x[129] = float64(rng.Intn(5)) * 25
		X[i] = x
		// Label: magnitude-like function of the top operand bits, scaled
		// by a corner factor.
		v := 0.0
		for j := 24; j < 32; j++ {
			v += x[j] * float64(j)
		}
		y[i] = (100 + 20*v) * (2 - x[128])
	}
	return X, y
}

func BenchmarkForestFit(b *testing.B) {
	X, y := benchData(5000, 1)
	cfg := DefaultForestConfig(Regression)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := NewRandomForest(cfg)
		if err := f.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkForestPredict(b *testing.B) {
	X, y := benchData(5000, 2)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Predict(X[i%len(X)])
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	X, y := benchData(5000, 3)
	m := NewKNN(5, Regression)
	if err := m.Fit(X, y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}

func BenchmarkRidgeFit(b *testing.B) {
	X, y := benchData(5000, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewRidge(1e-6)
		if err := m.Fit(X, y); err != nil {
			b.Fatal(err)
		}
	}
}
