package ml

import (
	"runtime"
	"sync"
)

// flatForest is the inference-optimized form of a fitted forest: every
// tree's nodes packed into one contiguous structure-of-arrays arena.
// Walking a tree touches five parallel arrays instead of chasing
// per-tree node slices, keeping the hot loop's working set dense and
// branch-predictable; child links are absolute arena indices so one set
// of arrays serves the whole ensemble.
type flatForest struct {
	feature   []int32 // -1 for leaves
	threshold []float64
	left      []int32 // absolute arena indices
	right     []int32
	value     []float64
	roots     []int32 // arena index of each tree's root
	mode      Mode
	classes   int // classification: max class count over trees
}

// flatten packs the pointer trees into the arena. Node order within a
// tree is preserved, so arena index = tree base + node index and the
// flat walk visits exactly the nodes the pointer walk would.
func flatten(trees []*DecisionTree, mode Mode) *flatForest {
	total := 0
	for _, t := range trees {
		total += len(t.nodes)
	}
	ff := &flatForest{
		feature:   make([]int32, 0, total),
		threshold: make([]float64, 0, total),
		left:      make([]int32, 0, total),
		right:     make([]int32, 0, total),
		value:     make([]float64, 0, total),
		roots:     make([]int32, 0, len(trees)),
		mode:      mode,
	}
	for _, t := range trees {
		base := int32(len(ff.feature))
		ff.roots = append(ff.roots, base)
		if t.classes > ff.classes {
			ff.classes = t.classes
		}
		for _, n := range t.nodes {
			ff.feature = append(ff.feature, n.feature)
			ff.threshold = append(ff.threshold, n.threshold)
			if n.feature < 0 {
				ff.left = append(ff.left, -1)
				ff.right = append(ff.right, -1)
			} else {
				ff.left = append(ff.left, base+n.left)
				ff.right = append(ff.right, base+n.right)
			}
			ff.value = append(ff.value, n.value)
		}
	}
	return ff
}

// predictTree walks one tree from its arena root.
func (ff *flatForest) predictTree(root int32, x []float64) float64 {
	i := root
	for {
		f := ff.feature[i]
		if f < 0 {
			return ff.value[i]
		}
		if x[f] <= ff.threshold[i] {
			i = ff.left[i]
		} else {
			i = ff.right[i]
		}
	}
}

// maxStackClasses bounds the vote scratch that classification keeps on
// the stack; ensembles with more classes fall back to a heap scratch per
// block, still amortized over the block's rows.
const maxStackClasses = 64

// predictRow aggregates the ensemble for one row: mean for regression,
// majority vote (lowest class wins ties) for classification. votes is
// caller scratch of at least ff.classes entries (ignored for
// regression).
func (ff *flatForest) predictRow(x []float64, votes []int) float64 {
	if ff.mode == Regression {
		sum := 0.0
		for _, root := range ff.roots {
			sum += ff.predictTree(root, x)
		}
		return sum / float64(len(ff.roots))
	}
	votes = votes[:ff.classes]
	for c := range votes {
		votes[c] = 0
	}
	for _, root := range ff.roots {
		votes[int(ff.predictTree(root, x))]++
	}
	bestC, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			bestC, bestN = c, n
		}
	}
	return float64(bestC)
}

// predictRange fills out[lo:hi] with predictions for X[lo:hi] without
// allocating (for regression, or classification with at most
// maxStackClasses classes).
func (ff *flatForest) predictRange(X [][]float64, out []float64, lo, hi int) {
	var stack [maxStackClasses]int
	votes := stack[:]
	if ff.classes > maxStackClasses {
		votes = make([]int, ff.classes)
	}
	for i := lo; i < hi; i++ {
		out[i] = ff.predictRow(X[i], votes)
	}
}

// predictBlocked partitions rows into contiguous blocks and predicts
// them on up to workers goroutines. Small batches run inline: goroutine
// fan-out only pays for itself once each worker has a few thousand tree
// walks to do.
const minParallelRows = 512

func (ff *flatForest) predictBlocked(X [][]float64, out []float64, workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(X)/minParallelRows {
		workers = len(X) / minParallelRows
	}
	if workers <= 1 {
		ff.predictRange(X, out, 0, len(X))
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*len(X)/workers, (w+1)*len(X)/workers
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			ff.predictRange(X, out, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
