package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// KernelSVM is a binary support-vector classifier with an RBF kernel,
// trained with simplified SMO. It matches what the paper actually ran —
// scikit-learn's SVC defaults to the RBF kernel — and inherits its cost
// profile: O(n²) kernel evaluations during training and
// O(support-vectors) work per prediction, which is why SVM dominates
// both time columns of Table II.
type KernelSVM struct {
	// C is the box constraint (default 1).
	C float64
	// Gamma is the RBF width, exp(-gamma*|x-y|²); 0 means 1/dims.
	Gamma float64
	// Tol is the KKT violation tolerance (default 1e-3).
	Tol float64
	// MaxPasses is the number of consecutive all-KKT-satisfied sweeps
	// before stopping (default 3).
	MaxPasses int
	// Seed drives the SMO partner selection.
	Seed int64

	x      [][]float64
	y      []float64 // ±1
	alpha  []float64
	b      float64
	gamma  float64
	kcache [][]float64 // full kernel matrix when n is small enough
}

// NewKernelSVM returns an unfitted classifier.
func NewKernelSVM(c, gamma float64, seed int64) *KernelSVM {
	if c <= 0 {
		c = 1
	}
	return &KernelSVM{C: c, Gamma: gamma, Tol: 1e-3, MaxPasses: 3, Seed: seed}
}

// kernelMatrixLimit bounds full kernel-matrix precomputation (n² floats).
const kernelMatrixLimit = 6000

// Fit trains on labels in {0, 1} with simplified SMO.
func (m *KernelSVM) Fit(X [][]float64, y []float64) error {
	if len(X) == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	if len(X) != len(y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(X), len(y))
	}
	n := len(X)
	m.x = X
	m.y = make([]float64, n)
	for i, v := range y {
		switch v {
		case 0:
			m.y[i] = -1
		case 1:
			m.y[i] = 1
		default:
			return fmt.Errorf("ml: kernel SVM requires labels in {0,1}, got %v", v)
		}
	}
	m.gamma = m.Gamma
	if m.gamma <= 0 {
		m.gamma = 1 / float64(len(X[0]))
	}
	m.alpha = make([]float64, n)
	m.b = 0
	if n <= kernelMatrixLimit {
		m.kcache = make([][]float64, n)
		for i := range m.kcache {
			m.kcache[i] = make([]float64, n)
			for j := 0; j <= i; j++ {
				k := m.kernel(X[i], X[j])
				m.kcache[i][j] = k
				m.kcache[j][i] = k
			}
		}
	}

	rng := rand.New(rand.NewSource(m.Seed))
	passes := 0
	maxPasses := m.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 3
	}
	for passes < maxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := m.decisionIdx(i) - m.y[i]
			if (m.y[i]*ei < -m.Tol && m.alpha[i] < m.C) || (m.y[i]*ei > m.Tol && m.alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				if m.step(i, j, ei) {
					changed++
				}
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}
	return nil
}

// step attempts one SMO pair update; reports whether alphas moved.
func (m *KernelSVM) step(i, j int, ei float64) bool {
	ej := m.decisionIdx(j) - m.y[j]
	ai, aj := m.alpha[i], m.alpha[j]
	var lo, hi float64
	if m.y[i] != m.y[j] {
		lo = math.Max(0, aj-ai)
		hi = math.Min(m.C, m.C+aj-ai)
	} else {
		lo = math.Max(0, ai+aj-m.C)
		hi = math.Min(m.C, ai+aj)
	}
	if lo == hi {
		return false
	}
	kii := m.k(i, i)
	kjj := m.k(j, j)
	kij := m.k(i, j)
	eta := 2*kij - kii - kjj
	if eta >= 0 {
		return false
	}
	ajNew := aj - m.y[j]*(ei-ej)/eta
	if ajNew > hi {
		ajNew = hi
	} else if ajNew < lo {
		ajNew = lo
	}
	if math.Abs(ajNew-aj) < 1e-5 {
		return false
	}
	aiNew := ai + m.y[i]*m.y[j]*(aj-ajNew)
	b1 := m.b - ei - m.y[i]*(aiNew-ai)*kii - m.y[j]*(ajNew-aj)*kij
	b2 := m.b - ej - m.y[i]*(aiNew-ai)*kij - m.y[j]*(ajNew-aj)*kjj
	switch {
	case aiNew > 0 && aiNew < m.C:
		m.b = b1
	case ajNew > 0 && ajNew < m.C:
		m.b = b2
	default:
		m.b = (b1 + b2) / 2
	}
	m.alpha[i], m.alpha[j] = aiNew, ajNew
	return true
}

func (m *KernelSVM) kernel(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Exp(-m.gamma * s)
}

func (m *KernelSVM) k(i, j int) float64 {
	if m.kcache != nil {
		return m.kcache[i][j]
	}
	return m.kernel(m.x[i], m.x[j])
}

// decisionIdx evaluates the decision function on training row i.
func (m *KernelSVM) decisionIdx(i int) float64 {
	s := m.b
	for t, a := range m.alpha {
		if a != 0 {
			s += a * m.y[t] * m.k(t, i)
		}
	}
	return s
}

// Decision returns the signed decision value for a feature vector.
func (m *KernelSVM) Decision(x []float64) float64 {
	s := m.b
	for t, a := range m.alpha {
		if a != 0 {
			s += a * m.y[t] * m.kernel(m.x[t], x)
		}
	}
	return s
}

// Predict returns the class {0, 1}.
func (m *KernelSVM) Predict(x []float64) float64 {
	if m.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// NumSupportVectors reports how many training rows carry weight.
func (m *KernelSVM) NumSupportVectors() int {
	n := 0
	for _, a := range m.alpha {
		if a > 1e-9 {
			n++
		}
	}
	return n
}
