package ml

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := synthRegression(400, 30)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != f.NumTrees() {
		t.Fatalf("tree count %d != %d", loaded.NumTrees(), f.NumTrees())
	}
	Xt, _ := synthRegression(100, 31)
	for i := range Xt {
		if loaded.Predict(Xt[i]) != f.Predict(Xt[i]) {
			t.Fatalf("row %d: prediction changed after round trip", i)
		}
	}
}

func TestForestSaveLoadClassification(t *testing.T) {
	X, y := synthXOR(300, 32)
	f := NewRandomForest(DefaultForestConfig(Classification))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X[:50] {
		if loaded.Predict(X[i]) != f.Predict(X[i]) {
			t.Fatalf("row %d: class changed after round trip", i)
		}
	}
}

func TestSaveUnfittedForestFails(t *testing.T) {
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save succeeded on unfitted forest")
	}
}

func TestLoadForestRejectsGarbage(t *testing.T) {
	if _, err := LoadForest(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("LoadForest accepted garbage")
	}
}

// zeroReader yields zero bytes forever — the body of a crafted gob
// stream whose message header claims an absurd payload.
type zeroReader struct{}

func (zeroReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

func TestLoadForestRejectsOversizedStream(t *testing.T) {
	// A gob message header claiming MaxForestBytes+1 bytes (uvarint:
	// -4 marker then 4 big-endian bytes), followed by an endless body.
	// The loader must stop at the byte cap, not read (or allocate)
	// without bound.
	claim := uint32(MaxForestBytes + 1)
	header := []byte{0xFC, byte(claim >> 24), byte(claim >> 16), byte(claim >> 8), byte(claim)}
	_, err := LoadForest(io.MultiReader(bytes.NewReader(header), zeroReader{}))
	if err == nil {
		t.Fatal("LoadForest accepted an oversized stream")
	}
	if !errors.Is(err, errForestTooLarge) {
		t.Fatalf("err = %v, want the size-cap error", err)
	}
}

func TestLoadForestRejectsAbsurdTreeCount(t *testing.T) {
	// A structurally valid DTO with more trees than any real ensemble:
	// it fits the byte budget, so the count cap must reject it.
	dto := forestDTO{Version: forestFormatVersion, Trees: make([]treeDTO, maxForestTrees+1)}
	for i := range dto.Trees {
		dto.Trees[i] = treeDTO{Nodes: []nodeDTO{{Feature: -1}}}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(dto); err != nil {
		t.Fatal(err)
	}
	_, err := LoadForest(&buf)
	if err == nil {
		t.Fatal("LoadForest accepted a forest over the tree-count cap")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Fatalf("err = %v, want a count-cap error", err)
	}
}
