package ml

import (
	"bytes"
	"testing"
)

func TestForestSaveLoadRoundTrip(t *testing.T) {
	X, y := synthRegression(400, 30)
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumTrees() != f.NumTrees() {
		t.Fatalf("tree count %d != %d", loaded.NumTrees(), f.NumTrees())
	}
	Xt, _ := synthRegression(100, 31)
	for i := range Xt {
		if loaded.Predict(Xt[i]) != f.Predict(Xt[i]) {
			t.Fatalf("row %d: prediction changed after round trip", i)
		}
	}
}

func TestForestSaveLoadClassification(t *testing.T) {
	X, y := synthXOR(300, 32)
	f := NewRandomForest(DefaultForestConfig(Classification))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range X[:50] {
		if loaded.Predict(X[i]) != f.Predict(X[i]) {
			t.Fatalf("row %d: class changed after round trip", i)
		}
	}
}

func TestSaveUnfittedForestFails(t *testing.T) {
	f := NewRandomForest(DefaultForestConfig(Regression))
	if err := f.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save succeeded on unfitted forest")
	}
}

func TestLoadForestRejectsGarbage(t *testing.T) {
	if _, err := LoadForest(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("LoadForest accepted garbage")
	}
}
