package sta

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
)

func TestAgingSlowsStaticDelay(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	corner := cells.Corner{V: 0.85, T: 50}
	fresh, err := Analyze(nl, corner, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	agedOpts := DefaultOptions()
	aging := cells.DefaultAging(3)
	agedOpts.Aging = &aging
	aged, err := Analyze(nl, corner, agedOpts)
	if err != nil {
		t.Fatal(err)
	}
	if aged.Delay <= fresh.Delay {
		t.Errorf("3-year aged delay (%v) should exceed fresh (%v)", aged.Delay, fresh.Delay)
	}
	if ratio := aged.Delay / fresh.Delay; ratio > 1.5 {
		t.Errorf("aging slowdown %.2fx implausibly large", ratio)
	}
}

func TestProcessVariationShiftsDies(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	corner := cells.Corner{V: 0.90, T: 25}
	delayOf := func(die int64) float64 {
		opts := DefaultOptions()
		p := cells.DefaultProcess(die)
		opts.Process = &p
		res, err := Analyze(nl, corner, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay
	}
	d1, d2, d3 := delayOf(1), delayOf(2), delayOf(3)
	if d1 == d2 && d2 == d3 {
		t.Error("three dies produced identical static delays")
	}
	// Same die is reproducible.
	if delayOf(1) != d1 {
		t.Error("per-die delay not deterministic")
	}
}

func TestVariationOptionValidation(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	corner := cells.Corner{V: 1, T: 25}
	opts := DefaultOptions()
	bad := cells.ProcessModel{DieSigma: -1}
	opts.Process = &bad
	if _, err := GateDelays(nl, corner, opts); err == nil {
		t.Error("accepted invalid process model")
	}
	opts = DefaultOptions()
	badAge := cells.AgingModel{A: -1, N: 0.2}
	opts.Aging = &badAge
	if _, err := GateDelays(nl, corner, opts); err == nil {
		t.Error("accepted invalid aging model")
	}
}
