// Package sta implements static timing analysis over a gate-level
// netlist: per-gate delay annotation at an operating corner, per-net
// arrival times, the critical path, and the static circuit delay. It is
// the stand-in for the PrimeTime step of the paper's flow — the source of
// per-corner SDF annotations and of the "static delay" that the
// Delay-based baseline model uses.
package sta

import (
	"fmt"

	"tevot/internal/cells"
	"tevot/internal/netlist"
	"tevot/internal/place"
)

// Options controls delay annotation.
type Options struct {
	// Scaling is the V/T derating model. The zero value is replaced by
	// cells.DefaultScaling().
	Scaling cells.ScalingModel
	// JitterSpread is the per-instance mismatch fraction (e.g. 0.02 for
	// ±2 %). Zero disables mismatch.
	JitterSpread float64
	// Process, when non-nil, applies die-to-die and within-die
	// threshold-voltage variation (the paper's process-variation
	// extension).
	Process *cells.ProcessModel
	// Aging, when non-nil, applies BTI threshold wearout (the paper's
	// aging extension).
	Aging *cells.AgingModel
	// Placement, when non-nil, adds per-gate interconnect delay from the
	// placed layout (the flow's post-layout physical detail). Wire
	// supplies the distance-to-delay coefficient. Interconnect delay is
	// RC-dominated, so it is not derated with the voltage corner.
	Placement *place.Placement
	Wire      place.WireModel
}

// DefaultOptions returns the options used throughout the reproduction:
// the default scaling model and ±2 % instance mismatch.
func DefaultOptions() Options {
	return Options{Scaling: cells.DefaultScaling(), JitterSpread: 0.02}
}

func (o Options) scaling() cells.ScalingModel {
	if o.Scaling == (cells.ScalingModel{}) {
		return cells.DefaultScaling()
	}
	return o.Scaling
}

// Result holds the outcome of one STA run at one corner.
type Result struct {
	Corner cells.Corner

	// GateDelay is the annotated propagation delay of each gate, in ps.
	GateDelay []float64
	// Arrival is the latest settling time of each net, in ps; primary
	// inputs are 0.
	Arrival []float64
	// Delay is the static circuit delay: the maximum arrival over the
	// primary outputs. This is what a clock period must exceed for
	// guaranteed-correct operation.
	Delay float64
	// CriticalOutput is the primary-output net achieving Delay.
	CriticalOutput netlist.NetID
	// CriticalPath lists the gates of the longest register-to-register
	// path, input side first.
	CriticalPath []netlist.GateID
}

// GateDelays annotates every gate of nl with its propagation delay at the
// given corner: (intrinsic + fanout load) derated by the V/T scaling
// model, with deterministic per-instance mismatch.
func GateDelays(nl *netlist.Netlist, corner cells.Corner, opts Options) ([]float64, error) {
	sc := opts.scaling()
	if err := sc.Validate(corner); err != nil {
		return nil, err
	}
	if opts.Process != nil {
		if err := opts.Process.Validate(); err != nil {
			return nil, err
		}
	}
	agingShift := 0.0
	if opts.Aging != nil {
		if err := opts.Aging.Validate(); err != nil {
			return nil, err
		}
		agingShift = opts.Aging.VthShift()
	}
	delays := make([]float64, len(nl.Gates))
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		tm := cells.NominalTiming(g.Kind)
		fanout := len(nl.Nets[g.Output].Fanout)
		if fanout < 1 {
			fanout = 1 // an unloaded output still drives its own wire
		}
		var factor float64
		if opts.Process == nil && agingShift == 0 {
			factor = sc.FactorFor(g.Kind, corner)
		} else {
			shift := agingShift
			if opts.Process != nil {
				shift += opts.Process.VthShift(g.Name)
			}
			factor = sc.FactorShifted(g.Kind, corner, shift)
		}
		d := (tm.Intrinsic + tm.PerLoad*float64(fanout)) * factor
		if opts.JitterSpread > 0 {
			d *= cells.JitterFactor(g.Name, opts.JitterSpread)
		}
		if opts.Placement != nil {
			d += opts.Placement.GateWireDelay(nl, opts.Wire, netlist.GateID(gi))
		}
		delays[gi] = d
	}
	return delays, nil
}

// Analyze runs full STA at the corner: annotation, arrival-time
// propagation in topological order, and critical-path extraction.
func Analyze(nl *netlist.Netlist, corner cells.Corner, opts Options) (*Result, error) {
	delays, err := GateDelays(nl, corner, opts)
	if err != nil {
		return nil, err
	}
	return AnalyzeWithDelays(nl, corner, delays)
}

// AnalyzeWithDelays runs STA with externally supplied per-gate delays
// (e.g. parsed back from an SDF file).
func AnalyzeWithDelays(nl *netlist.Netlist, corner cells.Corner, delays []float64) (*Result, error) {
	if len(delays) != len(nl.Gates) {
		return nil, fmt.Errorf("sta: %d gate delays for %d gates", len(delays), len(nl.Gates))
	}
	order, err := nl.TopoOrder()
	if err != nil {
		return nil, err
	}
	arrival := make([]float64, len(nl.Nets))
	for _, gi := range order {
		g := &nl.Gates[gi]
		worst := 0.0
		for _, in := range g.Inputs {
			if arrival[in] > worst {
				worst = arrival[in]
			}
		}
		arrival[g.Output] = worst + delays[gi]
	}

	res := &Result{
		Corner:         corner,
		GateDelay:      delays,
		Arrival:        arrival,
		CriticalOutput: -1,
	}
	for _, po := range nl.PrimaryOutputs {
		if arrival[po] >= res.Delay {
			res.Delay = arrival[po]
			res.CriticalOutput = po
		}
	}

	// Critical path: walk back from the critical output through the
	// worst-arrival input of each driver.
	if res.CriticalOutput >= 0 {
		var path []netlist.GateID
		net := res.CriticalOutput
		for {
			gi := nl.Nets[net].Driver
			if gi == netlist.None {
				break
			}
			path = append(path, gi)
			g := &nl.Gates[gi]
			worst, worstNet := -1.0, netlist.NetID(-1)
			for _, in := range g.Inputs {
				if arrival[in] > worst {
					worst = arrival[in]
					worstNet = in
				}
			}
			if worstNet < 0 {
				break
			}
			net = worstNet
		}
		// Reverse to input-first order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		res.CriticalPath = path
	}
	return res, nil
}
