package sta

import (
	"math"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/netlist"
)

func nominal() cells.Corner {
	m := cells.DefaultScaling()
	return cells.Corner{V: m.Vnom, T: m.Tnom}
}

// noJitter makes delays exactly predictable for structural assertions.
func noJitter() Options {
	return Options{Scaling: cells.DefaultScaling(), JitterSpread: 0}
}

func TestChainArrivalIsSum(t *testing.T) {
	b := netlist.NewBuilder("chain")
	x := b.Input("x")
	n := x
	for i := 0; i < 4; i++ {
		n = b.Not(n)
	}
	b.Output(n)
	nl := b.MustBuild()

	res, err := Analyze(nl, nominal(), noJitter())
	if err != nil {
		t.Fatal(err)
	}
	tm := cells.NominalTiming(cells.Inv)
	per := tm.Intrinsic + tm.PerLoad // each stage drives exactly one load
	want := 4 * per
	if math.Abs(res.Delay-want) > 1e-9 {
		t.Fatalf("chain delay = %v, want %v", res.Delay, want)
	}
	if len(res.CriticalPath) != 4 {
		t.Fatalf("critical path has %d gates, want 4", len(res.CriticalPath))
	}
}

func TestCriticalPathMonotoneLevels(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	res, err := Analyze(nl, nominal(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	levels, err := nl.Levels()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.CriticalPath); i++ {
		if levels[res.CriticalPath[i]] <= levels[res.CriticalPath[i-1]] {
			t.Fatalf("critical path not monotone in level at hop %d", i)
		}
	}
}

// TestArrivalDominance: every net's arrival is at least its driver's
// delay, and at least each fanin arrival.
func TestArrivalDominance(t *testing.T) {
	nl := circuits.NewCLAAdder(16)
	res, err := Analyze(nl, cells.Corner{V: 0.85, T: 50}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for gi := range nl.Gates {
		g := &nl.Gates[gi]
		out := res.Arrival[g.Output]
		if out < res.GateDelay[gi]-1e-9 {
			t.Fatalf("gate %s: arrival %v below own delay %v", g.Name, out, res.GateDelay[gi])
		}
		for _, in := range g.Inputs {
			if out < res.Arrival[in]+res.GateDelay[gi]-1e-9 {
				t.Fatalf("gate %s: arrival %v violates fanin %v + delay %v",
					g.Name, out, res.Arrival[in], res.GateDelay[gi])
			}
		}
	}
}

// TestStaticDelayScalesWithCorner: lower voltage slows the whole circuit;
// the ITD sign flip shows up in the full-circuit delay too.
func TestStaticDelayScalesWithCorner(t *testing.T) {
	nl := circuits.NewRippleAdder(16)
	delay := func(c cells.Corner) float64 {
		res, err := Analyze(nl, c, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.Delay
	}
	if d81, d100 := delay(cells.Corner{V: 0.81, T: 25}), delay(cells.Corner{V: 1.00, T: 25}); d81 <= d100 {
		t.Errorf("0.81V delay (%v) should exceed 1.00V delay (%v)", d81, d100)
	}
	if cold, hot := delay(cells.Corner{V: 0.81, T: 0}), delay(cells.Corner{V: 0.81, T: 100}); hot >= cold {
		t.Errorf("at 0.81V heating should reduce delay: cold %v, hot %v", cold, hot)
	}
	if cold, hot := delay(cells.Corner{V: 1.00, T: 0}), delay(cells.Corner{V: 1.00, T: 100}); hot <= cold {
		t.Errorf("at 1.00V heating should increase delay: cold %v, hot %v", cold, hot)
	}
}

func TestGateDelaysRejectsInvalidCorner(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	if _, err := GateDelays(nl, cells.Corner{V: 0.3, T: 25}, DefaultOptions()); err == nil {
		t.Fatal("GateDelays accepted a sub-threshold corner")
	}
}

func TestAnalyzeWithDelaysLengthMismatch(t *testing.T) {
	nl := circuits.NewRippleAdder(4)
	if _, err := AnalyzeWithDelays(nl, nominal(), []float64{1, 2}); err == nil {
		t.Fatal("AnalyzeWithDelays accepted a short delay slice")
	}
}

// TestJitterPerturbsButBounded: jitter changes delays by at most the
// spread and never the sign.
func TestJitterPerturbsButBounded(t *testing.T) {
	nl := circuits.NewRippleAdder(8)
	base, err := GateDelays(nl, nominal(), noJitter())
	if err != nil {
		t.Fatal(err)
	}
	jit, err := GateDelays(nl, nominal(), Options{Scaling: cells.DefaultScaling(), JitterSpread: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	different := 0
	for i := range base {
		ratio := jit[i] / base[i]
		if ratio < 0.98-1e-9 || ratio > 1.02+1e-9 {
			t.Fatalf("gate %d jitter ratio %v outside ±2%%", i, ratio)
		}
		if ratio != 1 {
			different++
		}
	}
	if different == 0 {
		t.Error("jitter had no effect on any gate")
	}
}

// TestFUStaticDelayOrdering sanity-checks that the multiplier is slower
// than the adder at the same corner, as in any real library.
func TestFUStaticDelayOrdering(t *testing.T) {
	add := circuits.NewRippleAdder(32)
	mul := circuits.NewTruncMultiplier(32)
	ra, err := Analyze(add, nominal(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Analyze(mul, nominal(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rm.Delay <= ra.Delay {
		t.Errorf("INT_MUL static delay (%v) should exceed INT_ADD (%v)", rm.Delay, ra.Delay)
	}
}
