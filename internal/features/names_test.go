package features

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/workload"
)

func cellsCornerZero() cells.Corner { return cells.Corner{} }

func pair(a, b uint32) workload.OperandPair { return workload.OperandPair{A: a, B: b} }

func TestNamesLayout(t *testing.T) {
	names := Names()
	if len(names) != Dim {
		t.Fatalf("Names has %d entries, want %d", len(names), Dim)
	}
	cases := map[int]string{
		0:   "x[t].a0",
		31:  "x[t].a31",
		32:  "x[t].b0",
		64:  "x[t-1].a0",
		127: "x[t-1].b31",
		128: "V",
		129: "T",
	}
	for i, want := range cases {
		if names[i] != want {
			t.Errorf("names[%d] = %q, want %q", i, names[i], want)
		}
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestNamesNHLayout(t *testing.T) {
	names := NamesNH()
	if len(names) != DimNH {
		t.Fatalf("NamesNH has %d entries, want %d", len(names), DimNH)
	}
	if names[0] != "x[t].a0" || names[63] != "x[t].b31" || names[64] != "V" || names[65] != "T" {
		t.Errorf("NamesNH layout wrong: %v ... %v", names[0], names[65])
	}
}

// TestNamesMatchVectorLayout cross-checks the labels against the actual
// vector layout: setting one operand bit moves exactly the named entry.
func TestNamesMatchVectorLayout(t *testing.T) {
	names := Names()
	c := Vector(cellsCornerZero(), pair(1<<7, 0), pair(0, 1<<3))
	for i := range c {
		switch names[i] {
		case "x[t].a7":
			if c[i] != 1 {
				t.Errorf("x[t].a7 not set where named")
			}
		case "x[t-1].b3":
			if c[i] != 1 {
				t.Errorf("x[t-1].b3 not set where named")
			}
		case "V", "T":
		default:
			if c[i] != 0 {
				t.Errorf("unexpected bit set at %q", names[i])
			}
		}
	}
}
