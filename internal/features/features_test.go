package features

import (
	"testing"
	"testing/quick"

	"tevot/internal/cells"
	"tevot/internal/workload"
)

func TestVectorLayout(t *testing.T) {
	c := cells.Corner{V: 0.85, T: 75}
	cur := workload.OperandPair{A: 1, B: 1 << 31}
	prev := workload.OperandPair{A: 0xFFFFFFFF, B: 0}
	x := Vector(c, cur, prev)
	if len(x) != Dim {
		t.Fatalf("len = %d, want %d", len(x), Dim)
	}
	if x[0] != 1 || x[1] != 0 {
		t.Error("cur.A LSB misplaced")
	}
	if x[63] != 1 {
		t.Error("cur.B MSB misplaced")
	}
	for i := 64; i < 96; i++ {
		if x[i] != 1 {
			t.Fatalf("prev.A bit %d should be 1", i-64)
		}
	}
	if x[128] != 0.85 || x[129] != 75 {
		t.Errorf("corner features = %v, %v", x[128], x[129])
	}
}

func TestVectorNHLayout(t *testing.T) {
	c := cells.Corner{V: 1.0, T: 0}
	x := VectorNH(c, workload.OperandPair{A: 3, B: 0})
	if len(x) != DimNH {
		t.Fatalf("len = %d, want %d", len(x), DimNH)
	}
	if x[0] != 1 || x[1] != 1 || x[2] != 0 {
		t.Error("cur.A bits misplaced")
	}
	if x[64] != 1.0 || x[65] != 0 {
		t.Errorf("corner features = %v, %v", x[64], x[65])
	}
}

// TestRoundTrip: Pairs(Vector(...)) is the identity — the involution
// property from the design doc.
func TestRoundTrip(t *testing.T) {
	f := func(a, b, pa, pb uint32, vi, ti uint8) bool {
		c := cells.Corner{V: 0.81 + float64(vi%20)*0.01, T: float64(ti%5) * 25}
		cur := workload.OperandPair{A: a, B: b}
		prev := workload.OperandPair{A: pa, B: pb}
		gc, gp, gcorner := Pairs(Vector(c, cur, prev))
		return gc == cur && gp == prev && gcorner.T == c.T &&
			gcorner.V > c.V-1e-9 && gcorner.V < c.V+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestBitsAreBinary: every bit feature is exactly 0 or 1.
func TestBitsAreBinary(t *testing.T) {
	f := func(a, b, pa, pb uint32) bool {
		x := Vector(cells.Corner{V: 1, T: 25},
			workload.OperandPair{A: a, B: b}, workload.OperandPair{A: pa, B: pb})
		for i := 0; i < 128; i++ {
			if x[i] != 0 && x[i] != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
