// Package features builds TEVoT's "variability feature" vectors: the
// concatenation {x[t], x[t-1], V, T} of the paper's Eq. 3 — the current
// 64-bit operand pair, the previous operand pair (path sensitization
// depends on the state the previous vector left behind), and the
// operating condition. For a 2×32-bit functional unit the vector has
// 64 + 64 + 2 = 130 dimensions.
package features

import (
	"fmt"

	"tevot/internal/cells"
	"tevot/internal/workload"
)

// Dim is the feature dimension with history (the full TEVoT feature).
const Dim = 130

// DimNH is the feature dimension without history (the TEVoT-NH ablation).
const DimNH = 66

// Vector builds the 130-dimensional TEVoT feature for one cycle: the
// current pair's 64 bits, the previous pair's 64 bits, then V and T.
func Vector(corner cells.Corner, cur, prev workload.OperandPair) []float64 {
	x := make([]float64, Dim)
	VectorInto(x, corner, cur, prev)
	return x
}

// VectorInto is Vector writing into the caller-provided dst (which must
// have Dim entries), so bulk feature extraction can fill rows of one
// contiguous backing array without per-row allocations.
func VectorInto(dst []float64, corner cells.Corner, cur, prev workload.OperandPair) {
	fillBits(dst[0:64], cur)
	fillBits(dst[64:128], prev)
	dst[128] = corner.V
	dst[129] = corner.T
}

// VectorNH builds the 66-dimensional history-free feature (TEVoT-NH):
// current pair bits, V, T.
func VectorNH(corner cells.Corner, cur workload.OperandPair) []float64 {
	x := make([]float64, DimNH)
	VectorNHInto(x, corner, cur)
	return x
}

// VectorNHInto is VectorNH writing into the caller-provided dst (which
// must have DimNH entries).
func VectorNHInto(dst []float64, corner cells.Corner, cur workload.OperandPair) {
	fillBits(dst[0:64], cur)
	dst[64] = corner.V
	dst[65] = corner.T
}

func fillBits(dst []float64, p workload.OperandPair) {
	for i := 0; i < 32; i++ {
		dst[i] = float64(p.A >> i & 1)
		dst[32+i] = float64(p.B >> i & 1)
	}
}

// Names returns human-readable labels for the 130 feature dimensions,
// in Vector's layout: x[t] operand bits, x[t-1] operand bits, V, T.
func Names() []string {
	names := make([]string, Dim)
	for i := 0; i < 32; i++ {
		names[i] = fmt.Sprintf("x[t].a%d", i)
		names[32+i] = fmt.Sprintf("x[t].b%d", i)
		names[64+i] = fmt.Sprintf("x[t-1].a%d", i)
		names[96+i] = fmt.Sprintf("x[t-1].b%d", i)
	}
	names[128] = "V"
	names[129] = "T"
	return names
}

// NamesNH is Names for the history-free layout.
func NamesNH() []string {
	names := make([]string, DimNH)
	for i := 0; i < 32; i++ {
		names[i] = fmt.Sprintf("x[t].a%d", i)
		names[32+i] = fmt.Sprintf("x[t].b%d", i)
	}
	names[64] = "V"
	names[65] = "T"
	return names
}

// Pairs recovers the operand pairs encoded in a full feature vector
// (inverse of Vector), used in tests as a round-trip property.
func Pairs(x []float64) (cur, prev workload.OperandPair, corner cells.Corner) {
	cur = unfillBits(x[0:64])
	prev = unfillBits(x[64:128])
	corner = cells.Corner{V: x[128], T: x[129]}
	return cur, prev, corner
}

func unfillBits(src []float64) workload.OperandPair {
	var p workload.OperandPair
	for i := 0; i < 32; i++ {
		if src[i] != 0 {
			p.A |= 1 << i
		}
		if src[32+i] != 0 {
			p.B |= 1 << i
		}
	}
	return p
}
