package workload

import (
	"math"
	"testing"
)

func TestRandomIntDeterministic(t *testing.T) {
	a := RandomInt(100, 42)
	b := RandomInt(100, 42)
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs across same-seed generations", i)
		}
	}
	c := RandomInt(100, 43)
	same := 0
	for i := range a.Pairs {
		if a.Pairs[i] == c.Pairs[i] {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different seeds produced %d/100 identical pairs", same)
	}
}

// TestRandomIntCoverage: a homogeneous distribution should set each of
// the 64 operand bits roughly half the time.
func TestRandomIntCoverage(t *testing.T) {
	s := RandomInt(4000, 7)
	for bit := 0; bit < 32; bit++ {
		na, nb := 0, 0
		for _, p := range s.Pairs {
			if p.A>>bit&1 == 1 {
				na++
			}
			if p.B>>bit&1 == 1 {
				nb++
			}
		}
		for _, n := range []int{na, nb} {
			if n < 1700 || n > 2300 {
				t.Fatalf("bit %d set %d/4000 times; not homogeneous", bit, n)
			}
		}
	}
}

func TestRandomFloatInRange(t *testing.T) {
	s := RandomFloat(1000, 256, 9)
	for i, p := range s.Pairs {
		for _, bits := range []uint32{p.A, p.B} {
			f := math.Float32frombits(bits)
			if math.IsNaN(float64(f)) || math.Abs(float64(f)) >= 256 {
				t.Fatalf("pair %d: operand %v outside [-256, 256)", i, f)
			}
		}
	}
}

func TestRandomDispatch(t *testing.T) {
	if s := Random(false, 10, 1); s.Len() != 10 {
		t.Error("integer stream wrong length")
	}
	s := Random(true, 10, 1)
	f := math.Float32frombits(s.Pairs[0].A)
	if math.IsNaN(float64(f)) {
		t.Error("float stream produced NaN")
	}
}

func TestRecorderCap(t *testing.T) {
	r := Recorder{Name: "x", Cap: 3}
	for i := 0; i < 10; i++ {
		r.Record(uint32(i), 0)
	}
	if len(r.Pairs) != 3 {
		t.Fatalf("recorded %d pairs, cap 3", len(r.Pairs))
	}
	s, err := r.Stream()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("stream length %d", s.Len())
	}
}

func TestRecorderTooShort(t *testing.T) {
	r := Recorder{Name: "x"}
	r.Record(1, 2)
	if _, err := r.Stream(); err == nil {
		t.Fatal("Stream succeeded with one pair")
	}
}

func TestInterleave(t *testing.T) {
	a := &Stream{Name: "a", Pairs: []OperandPair{{1, 1}, {2, 2}}}
	b := &Stream{Name: "b", Pairs: []OperandPair{{10, 10}}}
	m, err := Interleave("mix", 6, a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []OperandPair{{1, 1}, {10, 10}, {2, 2}, {10, 10}, {1, 1}, {10, 10}}
	for i := range want {
		if m.Pairs[i] != want[i] {
			t.Fatalf("pair %d = %v, want %v", i, m.Pairs[i], want[i])
		}
	}
	if _, err := Interleave("x", 3); err == nil {
		t.Fatal("Interleave with no streams succeeded")
	}
	empty := &Stream{Name: "e"}
	if _, err := Interleave("x", 3, empty); err == nil {
		t.Fatal("Interleave with empty stream succeeded")
	}
}

func TestSlice(t *testing.T) {
	s := RandomInt(10, 1)
	sub := s.Slice(2, 5)
	if sub.Len() != 3 || sub.Pairs[0] != s.Pairs[2] {
		t.Fatal("Slice view incorrect")
	}
}
