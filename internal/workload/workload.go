// Package workload generates and records the operand streams that drive
// dynamic timing analysis: uniformly random vectors (the paper's "random
// data" with a homogeneous distribution over the 2-D operand space) and
// application streams profiled from the image-processing kernels in
// internal/imaging (the paper's Sobel/Gaussian datasets profiled through
// Multi2Sim).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// OperandPair is one cycle's input to a 2×32-bit functional unit.
type OperandPair struct {
	A, B uint32
}

// Stream is a named operand sequence; consecutive pairs define the
// (previous, current) transitions that sensitize paths.
type Stream struct {
	Name  string
	Pairs []OperandPair
}

// Len returns the number of cycles in the stream.
func (s *Stream) Len() int { return len(s.Pairs) }

// Slice returns a sub-stream view (shares storage).
func (s *Stream) Slice(lo, hi int) *Stream {
	return &Stream{Name: s.Name, Pairs: s.Pairs[lo:hi]}
}

// RandomInt produces n uniformly random integer operand pairs — the
// homogeneous 2-D distribution over the full 2^64 input space.
func RandomInt(n int, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]OperandPair, n)
	for i := range pairs {
		pairs[i] = OperandPair{A: rng.Uint32(), B: rng.Uint32()}
	}
	return &Stream{Name: "random_data", Pairs: pairs}
}

// RandomFloat produces n random float32 operand pairs uniform in value
// over [-lim, lim) — the floating-point analogue of the homogeneous 2-D
// distribution (uniform random bit patterns would mostly be enormous
// magnitudes and NaN encodings, which no application feeds an FPU).
func RandomFloat(n int, lim float64, seed int64) *Stream {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]OperandPair, n)
	for i := range pairs {
		a := float32((rng.Float64()*2 - 1) * lim)
		b := float32((rng.Float64()*2 - 1) * lim)
		pairs[i] = OperandPair{A: math.Float32bits(a), B: math.Float32bits(b)}
	}
	return &Stream{Name: "random_data", Pairs: pairs}
}

// Random produces the default random stream for a unit: RandomInt for
// integer units, RandomFloat with lim 256 for floating-point units.
func Random(isFloat bool, n int, seed int64) *Stream {
	if isFloat {
		return RandomFloat(n, 256, seed)
	}
	return RandomInt(n, seed)
}

// Recorder accumulates the operand pairs an application actually feeds a
// functional unit — the profiling step the paper performs with a
// customized Multi2Sim.
type Recorder struct {
	Name  string
	Pairs []OperandPair
	// Cap bounds recording (0 = unlimited); profiling a large image set
	// can otherwise produce very long traces.
	Cap int
}

// Record appends one operand pair, honoring Cap by uniform reservoir-less
// truncation (the head of the stream is kept; timing behaviour has no
// positional bias in these kernels).
func (r *Recorder) Record(a, b uint32) {
	if r.Cap > 0 && len(r.Pairs) >= r.Cap {
		return
	}
	r.Pairs = append(r.Pairs, OperandPair{A: a, B: b})
}

// Stream returns the recorded pairs as a Stream.
func (r *Recorder) Stream() (*Stream, error) {
	if len(r.Pairs) < 2 {
		return nil, fmt.Errorf("workload: recorder %q has %d pairs; need at least 2", r.Name, len(r.Pairs))
	}
	return &Stream{Name: r.Name, Pairs: r.Pairs}, nil
}

// Interleave merges streams round-robin into one stream of length n,
// cycling through each source — used to build mixed training data.
func Interleave(name string, n int, streams ...*Stream) (*Stream, error) {
	if len(streams) == 0 {
		return nil, fmt.Errorf("workload: no streams to interleave")
	}
	for _, s := range streams {
		if s.Len() == 0 {
			return nil, fmt.Errorf("workload: empty stream %q", s.Name)
		}
	}
	pairs := make([]OperandPair, n)
	pos := make([]int, len(streams))
	for i := 0; i < n; i++ {
		s := streams[i%len(streams)]
		pairs[i] = s.Pairs[pos[i%len(streams)]%s.Len()]
		pos[i%len(streams)]++
	}
	return &Stream{Name: name, Pairs: pairs}, nil
}
