package core

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"tevot/internal/circuits"
	"tevot/internal/features"
	"tevot/internal/ml"
)

// modelHeader is the metadata saved ahead of the forest.
type modelHeader struct {
	Version int
	FU      int
	History bool
}

const modelFormatVersion = 1

// maxModelHeaderBytes caps the serialized model header. The header is
// three scalar fields (tens of bytes on the wire); a stream that claims
// more is hostile or corrupt, and the cap keeps LoadModel from feeding
// it to the gob decoder unboundedly. The forest that follows is capped
// separately by ml.MaxForestBytes.
const maxModelHeaderBytes int64 = 64 << 10

// errModelHeaderTooLarge reports a header that ran past the cap.
var errModelHeaderTooLarge = fmt.Errorf("core: model header exceeds the %d KiB size cap", maxModelHeaderBytes>>10)

// cappedReader fails any read past its budget (see ml's loader for the
// rationale: decode-side allocation must be bounded on untrusted input).
// It implements io.ByteReader so gob does not wrap it in a bufio.Reader
// whose readahead would steal bytes from the forest decoder that reads
// the same stream next.
type cappedReader struct {
	r         io.Reader
	remaining int64
}

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.remaining <= 0 {
		return 0, errModelHeaderTooLarge
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.r.Read(p)
	c.remaining -= int64(n)
	return n, err
}

func (c *cappedReader) ReadByte() (byte, error) {
	var b [1]byte
	for {
		n, err := c.Read(b[:])
		if n == 1 {
			return b[0], nil
		}
		if err != nil {
			return 0, err
		}
	}
}

// Save serializes a trained model (header + random forest) so it can be
// distributed and reloaded without retraining.
func (m *Model) Save(w io.Writer) error {
	if m.forest == nil {
		return fmt.Errorf("core: cannot save an untrained model")
	}
	hdr := modelHeader{Version: modelFormatVersion, FU: int(m.FU), History: m.History}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return err
	}
	return m.forest.Save(w)
}

// LoadModel reads a model saved with Save. It is safe on untrusted
// bytes: truncated or corrupted input yields an error, never a panic
// (gob panics on some malformed inputs are recovered here), never an
// unbounded hang, and never an unbounded allocation — the header and
// the forest are both decoded under size caps, so a crafted stream
// (e.g. uploaded through tevot-serve's /admin/reload) cannot exhaust
// memory before validation rejects it.
func LoadModel(r io.Reader) (m *Model, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("core: corrupt model data: %v", p)
		}
	}()
	var hdr modelHeader
	// The capped reader is scoped to the header decode: gob reads exact
	// counted messages, so the forest decoder picks up cleanly after it.
	if err := gob.NewDecoder(&cappedReader{r: r, remaining: maxModelHeaderBytes}).Decode(&hdr); err != nil {
		if errors.Is(err, errModelHeaderTooLarge) {
			return nil, errModelHeaderTooLarge
		}
		return nil, fmt.Errorf("core: decoding model header: %w", err)
	}
	if hdr.Version != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model format version %d", hdr.Version)
	}
	fu := circuits.FU(hdr.FU)
	known := false
	for _, f := range circuits.AllFUs {
		if f == fu {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("core: saved model references unknown FU %d", hdr.FU)
	}
	forest, err := ml.LoadForest(r)
	if err != nil {
		return nil, err
	}
	dim := features.Dim
	if !hdr.History {
		dim = features.DimNH
	}
	return &Model{FU: fu, History: hdr.History, forest: forest, dim: dim}, nil
}
