package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"tevot/internal/circuits"
	"tevot/internal/features"
	"tevot/internal/ml"
)

// modelHeader is the metadata saved ahead of the forest.
type modelHeader struct {
	Version int
	FU      int
	History bool
}

const modelFormatVersion = 1

// Save serializes a trained model (header + random forest) so it can be
// distributed and reloaded without retraining.
func (m *Model) Save(w io.Writer) error {
	if m.forest == nil {
		return fmt.Errorf("core: cannot save an untrained model")
	}
	hdr := modelHeader{Version: modelFormatVersion, FU: int(m.FU), History: m.History}
	if err := gob.NewEncoder(w).Encode(hdr); err != nil {
		return err
	}
	return m.forest.Save(w)
}

// LoadModel reads a model saved with Save. It is safe on untrusted
// bytes: truncated or corrupted input yields an error, never a panic
// (gob panics on some malformed inputs are recovered here) and never an
// unbounded hang.
func LoadModel(r io.Reader) (m *Model, err error) {
	defer func() {
		if p := recover(); p != nil {
			m, err = nil, fmt.Errorf("core: corrupt model data: %v", p)
		}
	}()
	var hdr modelHeader
	if err := gob.NewDecoder(r).Decode(&hdr); err != nil {
		return nil, fmt.Errorf("core: decoding model header: %w", err)
	}
	if hdr.Version != modelFormatVersion {
		return nil, fmt.Errorf("core: unsupported model format version %d", hdr.Version)
	}
	fu := circuits.FU(hdr.FU)
	known := false
	for _, f := range circuits.AllFUs {
		if f == fu {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("core: saved model references unknown FU %d", hdr.FU)
	}
	forest, err := ml.LoadForest(r)
	if err != nil {
		return nil, err
	}
	dim := features.Dim
	if !hdr.History {
		dim = features.DimNH
	}
	return &Model{FU: fu, History: hdr.History, forest: forest, dim: dim}, nil
}
