package core

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// TestEnableLayoutSlowsTiming: post-layout delays include interconnect,
// so the static delay must grow, and the full pipeline still works on
// the placed unit.
func TestEnableLayoutSlowsTiming(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 25}
	pre, err := u.Static(corner)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.EnableLayout(); err != nil {
		t.Fatal(err)
	}
	post, err := u.Static(corner)
	if err != nil {
		t.Fatal(err)
	}
	if post.Delay <= pre.Delay {
		t.Errorf("post-layout static delay (%v) should exceed pre-layout (%v)", post.Delay, pre.Delay)
	}
	if ratio := post.Delay / pre.Delay; ratio > 3 {
		t.Errorf("interconnect blew up the delay %vx; wire coefficient implausible", ratio)
	}

	// Full flow on the placed unit: characterize, train, evaluate.
	s := workload.RandomInt(601, 77)
	if _, err := u.CalibrateBaseClock(corner, s); err != nil {
		t.Fatal(err)
	}
	tr, err := CharacterizeWithSpeedups(u, corner, s, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxDelay > post.Delay+1e-9 {
		t.Errorf("post-layout dynamic max (%v) exceeds static (%v)", tr.MaxDelay, post.Delay)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := EvaluateAt(m, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy < 0.8 {
		t.Errorf("post-layout training accuracy %v suspiciously low", ev.Accuracy)
	}
}
