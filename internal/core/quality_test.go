package core

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/workload"
)

func TestCompareMethods(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.85, T: 50}
	train := workload.RandomInt(1201, 31)
	test := workload.RandomInt(601, 32)
	if _, err := u.CalibrateBaseClock(c, train); err != nil {
		t.Fatal(err)
	}
	trTrain, err := CharacterizeWithSpeedups(u, c, train, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	trTest, err := CharacterizeWithSpeedups(u, c, test, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	results, err := CompareMethods([]*Trace{trTrain}, []*Trace{trTest}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d methods, want 4", len(results))
	}
	byName := map[string]MethodResult{}
	for _, r := range results {
		byName[r.Method] = r
		t.Logf("%-4s acc %.4f train %v test %v", r.Method, r.Accuracy, r.TrainTime, r.TestTime)
		if r.Accuracy < 0.5 {
			t.Errorf("%s accuracy %.4f below coin flip", r.Method, r.Accuracy)
		}
	}
	for _, name := range []string{"LR", "KNN", "SVM", "RFC"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing method %s", name)
		}
	}
	// The paper's Table II ordering: RFC is the most accurate.
	rfc := byName["RFC"].Accuracy
	for _, name := range []string{"LR", "KNN", "SVM"} {
		if byName[name].Accuracy > rfc+0.01 {
			t.Errorf("%s (%.4f) should not beat RFC (%.4f)", name, byName[name].Accuracy, rfc)
		}
	}
}

func TestQualityStudySmall(t *testing.T) {
	units := map[circuits.FU]*FUnit{}
	for _, fu := range inject.SobelApp.FUs() {
		u, err := NewFUnit(fu)
		if err != nil {
			t.Fatal(err)
		}
		units[fu] = u
	}
	corner := cells.Corner{V: 0.81, T: 25}
	// Calibrate each FU's base clock on random data so speedups create
	// real error tails.
	predictors := map[circuits.FU]ErrorPredictor{}
	for fu, u := range units {
		train := workload.Random(fu.IsFloat(), 601, int64(fu))
		if _, err := u.CalibrateBaseClock(corner, train); err != nil {
			t.Fatal(err)
		}
		tr, err := CharacterizeWithSpeedups(u, corner, train, []float64{0.10})
		if err != nil {
			t.Fatal(err)
		}
		m, err := Train(fu, []*Trace{tr}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		predictors[fu] = m
		db, err := NewDelayBased(fu, []*Trace{tr})
		if err != nil {
			t.Fatal(err)
		}
		_ = db
	}
	tevotQ := QualityFromPredictors("TEVoT", predictors)

	images := imaging.SyntheticSet(2, 16, 16)
	res, err := QualityStudy(inject.SobelApp, units, []QualityModel{tevotQ},
		images, []cells.Corner{corner}, []float64{0.10},
		QualityOptions{Seed: 1, StreamCap: 800})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2 (1 corner x 1 speedup x 2 images)", len(res.Points))
	}
	acc, ok := res.EstimationAccuracy["TEVoT"]
	if !ok {
		t.Fatal("no TEVoT estimation accuracy")
	}
	if acc < 0 || acc > 1 {
		t.Fatalf("estimation accuracy %v outside [0,1]", acc)
	}
	for _, pt := range res.Points {
		if pt.TruePSNR < 0 {
			t.Errorf("negative ground-truth PSNR %v", pt.TruePSNR)
		}
		if _, ok := pt.PSNR["TEVoT"]; !ok {
			t.Error("point missing TEVoT PSNR")
		}
	}
	_ = res.MeanPSNRGap("TEVoT") // smoke: no panic on Inf PSNRs
}

func TestQualityStudyValidation(t *testing.T) {
	if _, err := QualityStudy(inject.SobelApp, nil, nil, nil, nil, nil, QualityOptions{}); err == nil {
		t.Error("QualityStudy accepted no images")
	}
}

func TestQualityFromPredictorsMissingFU(t *testing.T) {
	q := QualityFromPredictors("X", map[circuits.FU]ErrorPredictor{})
	if _, err := q.TERFor(circuits.IntAdd32, cells.Corner{V: 1, T: 25},
		workload.RandomInt(10, 1), 100); err == nil {
		t.Error("TERFor succeeded without a predictor")
	}
}
