package core

import (
	"fmt"
	"math/rand"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// ErrorPredictor is the interface all error models share: classify every
// cycle of a stream at one corner and clock period. It is what the
// evaluation harness and the quality study consume, so TEVoT and the
// baselines are interchangeable there.
type ErrorPredictor interface {
	// Name is the model's reporting label ("TEVoT", "Delay-based", ...).
	Name() string
	// Errors classifies each of the stream's s.Len()-1 cycles.
	Errors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error)
}

// Name implements ErrorPredictor for the TEVoT model.
func (m *Model) Name() string {
	if m.History {
		return "TEVoT"
	}
	return "TEVoT-NH"
}

// Errors implements ErrorPredictor for the TEVoT model.
func (m *Model) Errors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error) {
	return m.PredictErrors(corner, s, tclk)
}

// DelayBased is the paper's first baseline (from instruction-level
// models and HFG): predict a timing error whenever the clock period does
// not cover the maximum delay measured offline at the operating
// condition. It knows nothing about the input workload, so any
// clock speedup makes it predict an error on every cycle.
type DelayBased struct {
	fu  circuits.FU
	max map[cells.Corner]float64
}

// NewDelayBased builds the baseline from offline characterization
// traces: the per-corner maximum observed dynamic delay.
func NewDelayBased(fu circuits.FU, offline []*Trace) (*DelayBased, error) {
	if len(offline) == 0 {
		return nil, fmt.Errorf("core: Delay-based baseline needs offline traces")
	}
	m := make(map[cells.Corner]float64)
	for _, tr := range offline {
		if tr.FU != fu {
			return nil, fmt.Errorf("core: trace for %v mixed into %v baseline", tr.FU, fu)
		}
		if tr.MaxDelay > m[tr.Corner] {
			m[tr.Corner] = tr.MaxDelay
		}
	}
	return &DelayBased{fu: fu, max: m}, nil
}

// Name implements ErrorPredictor.
func (d *DelayBased) Name() string { return "Delay-based" }

// Errors implements ErrorPredictor: every cycle gets the same verdict.
func (d *DelayBased) Errors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error) {
	max, ok := d.max[corner]
	if !ok {
		return nil, fmt.Errorf("core: Delay-based baseline has no offline data for %v", corner)
	}
	out := make([]bool, s.Len()-1)
	if tclk < max {
		for i := range out {
			out[i] = true
		}
	}
	return out, nil
}

// TERBased is the paper's second baseline (EnerJ / Truffle style):
// errors are injected with a fixed probability equal to the timing-error
// rate measured during offline simulation at the same condition and
// clock. It uses no information from the actual test inputs.
type TERBased struct {
	fu   circuits.FU
	ters map[terKey]float64
	seed int64
}

type terKey struct {
	corner cells.Corner
	clock  float64
}

// NewTERBased builds the baseline from offline traces characterized at
// the clock periods of interest.
func NewTERBased(fu circuits.FU, offline []*Trace, seed int64) (*TERBased, error) {
	if len(offline) == 0 {
		return nil, fmt.Errorf("core: TER-based baseline needs offline traces")
	}
	t := &TERBased{fu: fu, ters: make(map[terKey]float64), seed: seed}
	for _, tr := range offline {
		if tr.FU != fu {
			return nil, fmt.Errorf("core: trace for %v mixed into %v baseline", tr.FU, fu)
		}
		for k, clock := range tr.ClockPeriods {
			t.ters[terKey{tr.Corner, clock}] = tr.TER(k)
		}
	}
	return t, nil
}

// Name implements ErrorPredictor.
func (t *TERBased) Name() string { return "TER-based" }

// TER looks up the offline rate for a corner and clock.
func (t *TERBased) TER(corner cells.Corner, tclk float64) (float64, error) {
	ter, ok := t.ters[terKey{corner, tclk}]
	if !ok {
		return 0, fmt.Errorf("core: TER-based baseline has no offline rate for %v at %.3f ps", corner, tclk)
	}
	return ter, nil
}

// Errors implements ErrorPredictor: Bernoulli draws at the offline rate,
// deterministic for a fixed seed.
func (t *TERBased) Errors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error) {
	ter, err := t.TER(corner, tclk)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(t.seed ^ int64(s.Len())))
	out := make([]bool, s.Len()-1)
	for i := range out {
		out[i] = rng.Float64() < ter
	}
	return out, nil
}

// GroundTruth wraps a characterization trace as an ErrorPredictor so the
// simulator's own verdicts can flow through the same evaluation and
// quality-study plumbing.
type GroundTruth struct {
	Trace *Trace
}

// Name implements ErrorPredictor.
func (g *GroundTruth) Name() string { return "Simulation" }

// Errors implements ErrorPredictor; the corner and stream must match the
// wrapped trace.
func (g *GroundTruth) Errors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error) {
	if corner != g.Trace.Corner {
		return nil, fmt.Errorf("core: ground truth is for %v, not %v", g.Trace.Corner, corner)
	}
	for k, c := range g.Trace.ClockPeriods {
		if c == tclk {
			return g.Trace.Errors[k], nil
		}
	}
	return nil, fmt.Errorf("core: ground truth has no clock %.3f ps", tclk)
}
