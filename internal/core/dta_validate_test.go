package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// TestCharacterizeRejectsBadInputs: the DTA entry point must return
// descriptive errors — never panic, never compute silent garbage — on
// the malformed inputs a sweep layer can plausibly hand it.
func TestCharacterizeRejectsBadInputs(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 25}
	ok := workload.RandomInt(64, 1)

	cases := []struct {
		name   string
		u      *FUnit
		s      *workload.Stream
		clocks []float64
		want   string
	}{
		{"nil unit", nil, ok, nil, "nil functional unit"},
		{"nil stream", u, nil, nil, "nil operand stream"},
		{"empty stream", u, &workload.Stream{Name: "empty"}, nil, "need at least 2"},
		{"one pair", u, ok.Slice(0, 1), nil, "need at least 2"},
		{"zero clock", u, ok, []float64{0}, "must be positive"},
		{"negative clock", u, ok, []float64{120, -5}, "must be positive"},
		{"nan clock", u, ok, []float64{math.NaN()}, "NaN"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Characterize(tc.u, corner, tc.s, tc.clocks)
			if err == nil {
				t.Fatalf("Characterize accepted %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestCharacterizeRejectsNaNOperands: NaN bit patterns fed to a float
// unit would propagate NaN delays into every downstream model; they must
// be rejected by name and index instead.
func TestCharacterizeRejectsNaNOperands(t *testing.T) {
	u, err := NewFUnit(circuits.FPAdd32)
	if err != nil {
		t.Fatal(err)
	}
	s := workload.RandomFloat(16, 100, 3)
	s.Name = "poisoned"
	s.Pairs[5].B = circuits.BitsFromFloat32(float32(math.NaN()))
	_, err = Characterize(u, cells.Corner{V: 0.9, T: 25}, s, nil)
	if err == nil {
		t.Fatal("Characterize accepted a NaN operand on a float unit")
	}
	if !strings.Contains(err.Error(), "NaN") || !strings.Contains(err.Error(), "pair 5") {
		t.Fatalf("error %q does not pinpoint the NaN operand", err)
	}

	// The same bit pattern on an integer unit is a legitimate operand.
	ui, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	si := workload.RandomInt(16, 3)
	si.Pairs[5].B = circuits.BitsFromFloat32(float32(math.NaN()))
	if _, err := Characterize(ui, cells.Corner{V: 0.9, T: 25}, si, nil); err != nil {
		t.Fatalf("integer unit rejected a NaN bit pattern: %v", err)
	}
}

// TestCharacterizeContextCancellation: an already-expired deadline stops
// the simulation loop promptly with the context's error.
func TestCharacterizeContextCancellation(t *testing.T) {
	u, err := NewFUnit(circuits.IntMul32)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = CharacterizeContext(ctx, u, cells.Corner{V: 0.85, T: 50}, workload.RandomInt(20000, 4), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancelled characterization ran to completion")
	}
}
