package core

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

func TestNewFUnits(t *testing.T) {
	units, err := NewFUnits()
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 4 {
		t.Fatalf("got %d units, want 4", len(units))
	}
	for _, fu := range circuits.AllFUs {
		u, ok := units[fu]
		if !ok || u.NL == nil {
			t.Errorf("missing or empty unit for %v", fu)
		}
	}
}

func TestNewFUnitFromNetlist(t *testing.T) {
	nl := circuits.NewCLAAdder(8)
	u, err := NewFUnitFromNetlist(circuits.IntAdd32, nl)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Static(cells.Corner{V: 0.9, T: 25}); err != nil {
		t.Fatalf("Static on wrapped netlist: %v", err)
	}
}

func TestCalibrateBaseClockErrors(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	// Invalid corner propagates.
	if _, err := u.CalibrateBaseClock(cells.Corner{V: 0.2, T: 25}, workload.RandomInt(50, 1)); err == nil {
		t.Error("calibration accepted a sub-threshold corner")
	}
	// A stream that never changes inputs has no activity to measure.
	quiet := &workload.Stream{Name: "quiet", Pairs: []workload.OperandPair{{A: 5, B: 5}, {A: 5, B: 5}}}
	if _, err := u.CalibrateBaseClock(cells.Corner{V: 1, T: 25}, quiet); err == nil {
		t.Error("calibration accepted a stream with no output activity")
	}
}

func TestModelPointErrorAndTER(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.9, T: 50}
	s := workload.RandomInt(401, 8)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cur, prev := s.Pairs[1], s.Pairs[0]
	d := m.PredictDelay(c, cur, prev)
	if m.PredictError(c, cur, prev, d+1) {
		t.Error("PredictError true above the predicted delay")
	}
	if !m.PredictError(c, cur, prev, d-1) {
		t.Error("PredictError false below the predicted delay")
	}
	ter, err := m.TER(c, s, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	if ter < 0.99 {
		t.Errorf("TER at a near-zero clock = %v, want ~1", ter)
	}
	ter, err = m.TER(c, s, tr.StaticDelay*2)
	if err != nil {
		t.Fatal(err)
	}
	if ter != 0 {
		t.Errorf("TER at a huge clock = %v, want 0", ter)
	}
	if _, err := m.TER(c, &workload.Stream{Name: "x"}, 100); err == nil {
		t.Error("TER accepted an empty stream")
	}
}
