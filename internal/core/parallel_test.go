package core

import (
	"reflect"
	"sync"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// equalTraces compares everything a characterization produces: the
// per-cycle delays, every error matrix, and the aggregates.
func equalTraces(t *testing.T, seq, par *Trace) {
	t.Helper()
	if !reflect.DeepEqual(seq.Delays, par.Delays) {
		t.Fatal("parallel Delays differ from sequential")
	}
	if !reflect.DeepEqual(seq.Errors, par.Errors) {
		t.Fatal("parallel Errors differ from sequential")
	}
	if seq.MaxDelay != par.MaxDelay {
		t.Fatalf("MaxDelay: sequential %v, parallel %v", seq.MaxDelay, par.MaxDelay)
	}
	if seq.StaticDelay != par.StaticDelay {
		t.Fatalf("StaticDelay: sequential %v, parallel %v", seq.StaticDelay, par.StaticDelay)
	}
	if seq.Events != par.Events {
		t.Fatalf("Events: sequential %d, parallel %d", seq.Events, par.Events)
	}
	for k := range seq.Errors {
		if seq.TER(k) != par.TER(k) {
			t.Fatalf("TER(%d): sequential %v, parallel %v", k, seq.TER(k), par.TER(k))
		}
	}
}

// TestCharacterizeShardingDeterminism is the bit-identity guarantee of
// the sharded hot path: Workers:8 must reproduce the Workers:1 trace
// exactly — every delay, every error bit, every aggregate — across
// units and corners.
func TestCharacterizeShardingDeterminism(t *testing.T) {
	fus := []circuits.FU{circuits.IntAdd32, circuits.FPAdd32}
	if !testing.Short() {
		fus = append(fus, circuits.IntMul32)
	}
	corners := []cells.Corner{{V: 0.85, T: 50}, {V: 0.95, T: 100}}
	for _, fu := range fus {
		u, err := NewFUnit(fu)
		if err != nil {
			t.Fatal(err)
		}
		// 521 pairs = 520 cycles: enough for 8 shards of >= minShardCycles,
		// small enough that the multiplier stays affordable under -race.
		stream := workload.Random(fu.IsFloat(), 521, 7)
		for _, corner := range corners {
			static, err := u.Static(corner)
			if err != nil {
				t.Fatal(err)
			}
			// Aggressive and mild capture clocks, so the error matrices hold
			// a mix of both outcomes.
			clocks := []float64{0.5 * static.Delay, 0.9 * static.Delay}
			seq, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%v %v: TER %.4f / %.4f, max delay %.1f ps", fu, corner, seq.TER(0), seq.TER(1), seq.MaxDelay)
			equalTraces(t, seq, par)
		}
	}
}

// TestCharacterizeRefKernelEquivalence runs the same characterization on
// the fast calendar-queue kernel and the reference heap kernel: a full
// pipeline-level replay of the sim package's differential guarantee.
// Sharding is exercised on both sides since each shard gets its own
// runner of the selected kernel.
func TestCharacterizeRefKernelEquivalence(t *testing.T) {
	u, err := NewFUnit(circuits.FPAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.83, T: 75}
	stream := workload.Random(true, 300, 11)
	static, err := u.Static(corner)
	if err != nil {
		t.Fatal(err)
	}
	clocks := []float64{0.5 * static.Delay, 0.9 * static.Delay}
	fast, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 4, RefKernel: true})
	if err != nil {
		t.Fatal(err)
	}
	equalTraces(t, fast, ref)
}

// TestCharacterizeConcurrentSharedFUnit stresses the layering the sweep
// runner produces: several goroutines characterize the same FUnit at
// once, each itself sharded. Run under -race (scripts/check.sh does) it
// proves the shared STA cache and the per-shard runners do not race;
// the results must also all be identical.
func TestCharacterizeConcurrentSharedFUnit(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 50}
	stream := workload.Random(false, 400, 3)
	clocks := []float64{500, 700}
	const callers = 4
	traces := make([]*Trace, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			traces[i], errs[i] = CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 4})
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if i > 0 {
			equalTraces(t, traces[0], traces[i])
		}
	}
}

// TestStaticSingleflight asserts the STA dedup: any number of
// concurrent Static calls at one uncached corner execute exactly one
// analysis, and all see the same result.
func TestStaticSingleflight(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 75}
	const callers = 8
	var start, wg sync.WaitGroup
	start.Add(1)
	results := make([]float64, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			start.Wait()
			res, err := u.Static(corner)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res.Delay
		}(i)
	}
	start.Done()
	wg.Wait()
	u.mu.Lock()
	runs := u.staRuns
	u.mu.Unlock()
	if runs != 1 {
		t.Fatalf("%d concurrent Static calls executed %d analyses; want 1", callers, runs)
	}
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d saw delay %v, caller 0 saw %v", i, results[i], results[0])
		}
	}
}
