package core

import (
	"bytes"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.88, T: 50}
	s := workload.RandomInt(501, 9)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FU != m.FU || loaded.History != m.History {
		t.Fatalf("metadata lost: %v/%v vs %v/%v", loaded.FU, loaded.History, m.FU, m.History)
	}
	test := workload.RandomInt(201, 10)
	orig, err := m.PredictDelays(c, test)
	if err != nil {
		t.Fatal(err)
	}
	back, err := loaded.PredictDelays(c, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] != back[i] {
			t.Fatalf("cycle %d: prediction changed after round trip (%v != %v)", i, orig[i], back[i])
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("LoadModel accepted garbage")
	}
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("LoadModel accepted empty input")
	}
}

func TestSaveUntrainedModelFails(t *testing.T) {
	m := &Model{FU: circuits.IntAdd32}
	if err := m.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save succeeded on an untrained model")
	}
}
