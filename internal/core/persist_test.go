package core

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.88, T: 50}
	s := workload.RandomInt(501, 9)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.FU != m.FU || loaded.History != m.History {
		t.Fatalf("metadata lost: %v/%v vs %v/%v", loaded.FU, loaded.History, m.FU, m.History)
	}
	test := workload.RandomInt(201, 10)
	orig, err := m.PredictDelays(c, test)
	if err != nil {
		t.Fatal(err)
	}
	back, err := loaded.PredictDelays(c, test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if orig[i] != back[i] {
			t.Fatalf("cycle %d: prediction changed after round trip (%v != %v)", i, orig[i], back[i])
		}
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("LoadModel accepted garbage")
	}
	if _, err := LoadModel(bytes.NewReader(nil)); err == nil {
		t.Fatal("LoadModel accepted empty input")
	}
}

func TestSaveUntrainedModelFails(t *testing.T) {
	m := &Model{FU: circuits.IntAdd32}
	if err := m.Save(&bytes.Buffer{}); err == nil {
		t.Fatal("Save succeeded on an untrained model")
	}
}

// trainedModelBytes returns a valid serialized model for corruption
// tests.
func trainedModelBytes(t *testing.T) []byte {
	t.Helper()
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Characterize(u, cells.Corner{V: 0.88, T: 50}, workload.RandomInt(401, 11), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLoadModelCorruptRoundTrip: every truncation of a valid model file
// must load cleanly or fail with an error — never panic, never hang.
// This is the "power cut mid-download" case for distributed pre-trained
// models.
func TestLoadModelCorruptRoundTrip(t *testing.T) {
	valid := trainedModelBytes(t)
	if _, err := LoadModel(bytes.NewReader(valid)); err != nil {
		t.Fatalf("pristine model does not load: %v", err)
	}
	step := len(valid)/97 + 1
	for n := 0; n < len(valid); n += step {
		if _, err := LoadModel(bytes.NewReader(valid[:n])); err == nil {
			t.Fatalf("truncation to %d/%d bytes loaded without error", n, len(valid))
		}
	}
}

// TestLoadModelBitFlips: seeded single- and multi-byte corruptions must
// never panic LoadModel; when a flip happens to load, the model must
// still be safe to use (Predict cannot loop or index out of range).
func TestLoadModelBitFlips(t *testing.T) {
	valid := trainedModelBytes(t)
	rng := rand.New(rand.NewSource(42))
	corrupt := make([]byte, len(valid))
	for trial := 0; trial < 300; trial++ {
		copy(corrupt, valid)
		flips := 1 + rng.Intn(4)
		for f := 0; f < flips; f++ {
			corrupt[rng.Intn(len(corrupt))] ^= byte(1 << rng.Intn(8))
		}
		m, err := LoadModel(bytes.NewReader(corrupt))
		if err != nil || m == nil {
			continue
		}
		// The corruption survived validation: the model must still be
		// structurally usable.
		if _, err := m.PredictDelays(cells.Corner{V: 0.9, T: 25}, workload.RandomInt(32, 5)); err != nil {
			t.Logf("trial %d: corrupted-but-valid model errored on predict: %v", trial, err)
		}
	}
}

// endlessZeros yields zero bytes forever — the body of a crafted gob
// stream whose message header claims an absurd payload.
type endlessZeros struct{}

func (endlessZeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestLoadModelRejectsOversizedHeader: a stream whose first gob message
// claims a multi-megabyte header (the /admin/reload bomb shape) must be
// rejected at the header size cap instead of being read without bound.
func TestLoadModelRejectsOversizedHeader(t *testing.T) {
	claim := uint32(16 << 20)
	header := []byte{0xFC, byte(claim >> 24), byte(claim >> 16), byte(claim >> 8), byte(claim)}
	_, err := LoadModel(io.MultiReader(bytes.NewReader(header), endlessZeros{}))
	if err == nil {
		t.Fatal("LoadModel accepted an oversized header stream")
	}
	if !errors.Is(err, errModelHeaderTooLarge) {
		t.Fatalf("err = %v, want the header size-cap error", err)
	}
}

// TestLoadModelGarbagePrefix: high-entropy garbage and gob-ish garbage
// both fail cleanly.
func TestLoadModelGarbagePrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(4096)
		junk := make([]byte, n)
		rng.Read(junk)
		if m, err := LoadModel(bytes.NewReader(junk)); err == nil && m != nil {
			t.Fatalf("trial %d: %d random bytes decoded as a model", trial, n)
		}
	}
}
