package core

import (
	"fmt"
	"sort"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/features"
	"tevot/internal/ml"
	"tevot/internal/obs"
	"tevot/internal/workload"
)

// Config controls TEVoT training.
type Config struct {
	// Forest configures the random-forest regressor. The zero value is
	// replaced by the paper's default (10 trees, all features per split).
	Forest ml.ForestConfig
	// History includes the previous input vector x[t-1] in the features.
	// Disabling it yields the TEVoT-NH ablation baseline.
	History bool
}

// DefaultConfig returns the paper's configuration: random forest with 10
// trees, full feature set including computation history.
func DefaultConfig() Config {
	return Config{Forest: ml.DefaultForestConfig(ml.Regression), History: true}
}

// Model is a trained TEVoT predictor for one functional unit. It
// predicts the dynamic delay D[t] from {V, T, x[t], x[t-1]} and derives
// timing errors by comparing the prediction with any clock period — the
// paper's Eq. 2 formulation, reusable across clock speeds without
// retraining.
type Model struct {
	FU      circuits.FU
	History bool

	forest *ml.RandomForest
	dim    int
}

// Train fits a TEVoT model from one or more characterization traces
// (typically spanning many operating corners, so the model learns the
// condition dependence along with the workload dependence).
func Train(fu circuits.FU, traces []*Trace, cfg Config) (*Model, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("core: no training traces")
	}
	if cfg.Forest.Trees == 0 {
		cfg.Forest = ml.DefaultForestConfig(ml.Regression)
	}
	cfg.Forest.Tree.Mode = ml.Regression
	dim := features.Dim
	if !cfg.History {
		dim = features.DimNH
	}
	total := 0
	for _, tr := range traces {
		if tr.FU != fu {
			return nil, fmt.Errorf("core: trace for %v mixed into %v training", tr.FU, fu)
		}
		total += tr.Cycles()
	}
	// One contiguous backing array for all rows: cheaper to fill and much
	// friendlier to the forest's split scans than n separate row allocs.
	endFeat := obs.Time("features.extract")
	X := featureRows(total, dim)
	y := make([]float64, 0, total)
	row := 0
	for _, tr := range traces {
		pairs := tr.Stream.Pairs
		for i := 0; i < tr.Cycles(); i++ {
			if cfg.History {
				features.VectorInto(X[row], tr.Corner, pairs[i+1], pairs[i])
			} else {
				features.VectorNHInto(X[row], tr.Corner, pairs[i+1])
			}
			row++
			y = append(y, tr.Delays[i])
		}
	}
	endFeat()
	forest := ml.NewRandomForest(cfg.Forest)
	endFit := obs.Time("forest.fit")
	err := forest.Fit(X, y)
	endFit()
	if err != nil {
		return nil, err
	}
	return &Model{FU: fu, History: cfg.History, forest: forest, dim: dim}, nil
}

// PredictDelay estimates the dynamic delay (ps) of applying cur after
// prev at the given corner. For history-free models prev is ignored.
func (m *Model) PredictDelay(corner cells.Corner, cur, prev workload.OperandPair) float64 {
	var x []float64
	if m.History {
		x = features.Vector(corner, cur, prev)
	} else {
		x = features.VectorNH(corner, cur)
	}
	return m.forest.Predict(x)
}

// PredictError classifies one cycle at clock period tclk (ps): erroneous
// when the predicted delay exceeds the period.
func (m *Model) PredictError(corner cells.Corner, cur, prev workload.OperandPair, tclk float64) bool {
	return m.PredictDelay(corner, cur, prev) > tclk
}

// PredictErrors classifies every cycle of a stream at one clock period.
// Cycle i applies s.Pairs[i+1] after s.Pairs[i]; the result has
// s.Len()-1 entries.
func (m *Model) PredictErrors(corner cells.Corner, s *workload.Stream, tclk float64) ([]bool, error) {
	delays, err := m.PredictDelays(corner, s)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(delays))
	for i, d := range delays {
		out[i] = d > tclk
	}
	return out, nil
}

// Dim returns the model's feature-vector width (features.Dim with
// history, features.DimNH without). Callers that manage their own
// scratch buffers — the serving worker pool — size rows with it.
func (m *Model) Dim() int { return m.dim }

// FillFeatureRows fills one feature row per predicted cycle — cycle i
// applies pairs[i+1] after pairs[i] — at the given corner, without
// predicting. X must hold at least len(pairs)-1 rows of width Dim();
// row contents are overwritten and nothing is retained or allocated.
// Splitting the fill from the forest call lets a serving coalescer pack
// rows from requests at *different* corners into one contiguous batch
// and amortize a single PredictRowsInto over all of them.
func (m *Model) FillFeatureRows(X [][]float64, corner cells.Corner, pairs []workload.OperandPair) error {
	n := len(pairs) - 1
	if n < 1 {
		return fmt.Errorf("core: need at least 2 operand pairs, got %d", len(pairs))
	}
	if len(X) < n {
		return fmt.Errorf("core: scratch holds %d rows, need %d", len(X), n)
	}
	for i := 0; i < n; i++ {
		if len(X[i]) != m.dim {
			return fmt.Errorf("core: scratch row %d has width %d, model wants %d", i, len(X[i]), m.dim)
		}
		if m.History {
			features.VectorInto(X[i], corner, pairs[i+1], pairs[i])
		} else {
			features.VectorNHInto(X[i], corner, pairs[i+1])
		}
	}
	return nil
}

// PredictRowsInto runs the forest over pre-filled feature rows (see
// FillFeatureRows), writing len(X) delays into dst. It allocates
// nothing; large batches fan out across the forest's internal workers.
func (m *Model) PredictRowsInto(dst []float64, X [][]float64) error {
	if len(dst) < len(X) {
		return fmt.Errorf("core: dst holds %d delays, need %d", len(dst), len(X))
	}
	m.forest.PredictBatchInto(dst[:len(X)], X)
	return nil
}

// PredictDelaysPairsInto is the zero-allocation serving path: it
// predicts the dynamic delay of cycle i (pairs[i+1] applied after
// pairs[i]) for i in [0, len(pairs)-1), writing into dst. X is caller
// scratch of at least len(pairs)-1 rows, each of width Dim(); row
// contents are overwritten. Neither dst nor X are retained. The steady
// state allocates nothing, so a prediction server can hold one buffer
// set per worker and stay off the garbage collector entirely.
func (m *Model) PredictDelaysPairsInto(dst []float64, X [][]float64, corner cells.Corner, pairs []workload.OperandPair) error {
	n := len(pairs) - 1
	if n < 1 {
		return fmt.Errorf("core: need at least 2 operand pairs, got %d", len(pairs))
	}
	if len(dst) < n {
		return fmt.Errorf("core: dst holds %d delays, need %d", len(dst), n)
	}
	if err := m.FillFeatureRows(X[:n], corner, pairs); err != nil {
		return err
	}
	return m.PredictRowsInto(dst[:n], X[:n])
}

// PredictDelays estimates the dynamic delay of every cycle of a stream.
func (m *Model) PredictDelays(corner cells.Corner, s *workload.Stream) ([]float64, error) {
	if s.Len() < 2 {
		return nil, fmt.Errorf("core: stream %q too short", s.Name)
	}
	endFeat := obs.Time("features.extract")
	X := featureRows(s.Len()-1, m.dim)
	for i := 0; i < s.Len()-1; i++ {
		if m.History {
			features.VectorInto(X[i], corner, s.Pairs[i+1], s.Pairs[i])
		} else {
			features.VectorNHInto(X[i], corner, s.Pairs[i+1])
		}
	}
	endFeat()
	endPred := obs.Time("forest.predict")
	out := m.forest.PredictBatch(X)
	endPred()
	return out, nil
}

// featureRows carves n rows of width dim out of one contiguous backing
// array (each row capped so an append cannot bleed into its neighbor).
func featureRows(n, dim int) [][]float64 {
	backing := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = backing[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

// FeatureImportance reports which features drive the model's delay
// predictions: the forest's normalized impurity-decrease importance,
// paired with human-readable names ("x[t].a31", "V", ...). This is the
// interpretability that made the paper choose the random forest.
func (m *Model) FeatureImportance() (names []string, importance []float64) {
	if m.History {
		names = features.Names()
	} else {
		names = features.NamesNH()
	}
	importance = m.forest.Importance()
	if importance == nil {
		importance = make([]float64, len(names))
	}
	return names, importance
}

// TopFeatures returns the k most important features, descending.
func (m *Model) TopFeatures(k int) []string {
	names, imp := m.FeatureImportance()
	type fi struct {
		name string
		v    float64
	}
	all := make([]fi, len(names))
	for i := range names {
		all[i] = fi{names[i], imp[i]}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].name
	}
	return out
}

// TER derives the model's predicted timing-error rate for a stream at a
// corner and clock period — the quantity injected into applications in
// the quality study.
func (m *Model) TER(corner cells.Corner, s *workload.Stream, tclk float64) (float64, error) {
	errs, err := m.PredictErrors(corner, s, tclk)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range errs {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(errs)), nil
}
