package core

import (
	"fmt"
	"math"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/workload"
)

// QualityModel is an error model participating in the application
// quality study: it supplies a per-FU timing-error rate at a condition
// and clock, which the injector then applies to the application's FU
// operations.
type QualityModel interface {
	Name() string
	// TERFor returns the model's timing-error rate for a functional
	// unit's profiled application stream at a corner and clock period.
	TERFor(fu circuits.FU, corner cells.Corner, s *workload.Stream, tclk float64) (float64, error)
}

// predictorQuality adapts any ErrorPredictor to QualityModel.
type predictorQuality struct {
	name string
	pred func(fu circuits.FU) ErrorPredictor
}

// QualityFromPredictors builds a QualityModel from one ErrorPredictor
// per functional unit (e.g. one trained TEVoT model per FU).
func QualityFromPredictors(name string, byFU map[circuits.FU]ErrorPredictor) QualityModel {
	return &predictorQuality{name: name, pred: func(fu circuits.FU) ErrorPredictor { return byFU[fu] }}
}

func (q *predictorQuality) Name() string { return q.name }

func (q *predictorQuality) TERFor(fu circuits.FU, corner cells.Corner, s *workload.Stream, tclk float64) (float64, error) {
	p := q.pred(fu)
	if p == nil {
		return 0, fmt.Errorf("core: quality model %q has no predictor for %v", q.name, fu)
	}
	errs, err := p.Errors(corner, s, tclk)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range errs {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(errs)), nil
}

// QualityPoint is one (application, corner, speedup, image) observation:
// each model's PSNR and acceptability verdict next to the
// simulation-derived ground truth.
type QualityPoint struct {
	App     inject.App
	Corner  cells.Corner
	Speedup float64
	Image   int

	TruePSNR       float64
	TrueAcceptable bool

	PSNR       map[string]float64
	Acceptable map[string]bool
}

// QualityResult aggregates a quality study.
type QualityResult struct {
	Points []QualityPoint
	// EstimationAccuracy per model name: Eq. 5, the fraction of points
	// whose acceptability verdict matches the ground truth.
	EstimationAccuracy map[string]float64
}

// QualityOptions tunes a quality study run.
type QualityOptions struct {
	// Seed drives error injection.
	Seed int64
	// StreamCap bounds the profiled operand pairs per FU fed to
	// characterization (0 = unlimited). Large image sets otherwise
	// produce very long gate-level simulations.
	StreamCap int
}

// QualityStudy runs the paper's §V.D case study for one application:
// profile the app's per-FU operand streams, characterize the ground
// truth at each corner and speedup, derive each model's per-FU TER,
// inject errors at those rates, and compare PSNR-acceptability verdicts
// against the simulation-derived ground truth.
func QualityStudy(
	app inject.App,
	units map[circuits.FU]*FUnit,
	models []QualityModel,
	images []*imaging.Image,
	corners []cells.Corner,
	speedups []float64,
	opts QualityOptions,
) (*QualityResult, error) {
	if len(images) == 0 {
		return nil, fmt.Errorf("core: quality study needs images")
	}
	// Profile the application's operand streams once (the paper profiles
	// the OpenCL kernels through Multi2Sim).
	rec := inject.NewRecording(opts.StreamCap)
	for _, img := range images {
		app.Run(img, rec)
	}
	streams := make(map[circuits.FU]*workload.Stream)
	for _, fu := range app.FUs() {
		s, err := rec.Stream(fu)
		if err != nil {
			return nil, fmt.Errorf("core: profiling %v for %v: %w", fu, app, err)
		}
		streams[fu] = s
	}

	res := &QualityResult{EstimationAccuracy: make(map[string]float64)}
	matches := make(map[string]int)
	total := 0

	for _, corner := range corners {
		for _, sp := range speedups {
			// Ground-truth TER per FU from gate-level simulation of the
			// profiled stream.
			trueTERs := inject.TERs{}
			modelTERs := make(map[string]inject.TERs)
			for _, m := range models {
				modelTERs[m.Name()] = inject.TERs{}
			}
			for _, fu := range app.FUs() {
				u := units[fu]
				if u == nil {
					return nil, fmt.Errorf("core: no FUnit for %v", fu)
				}
				clocks, err := u.ClockPeriods(corner, []float64{sp})
				if err != nil {
					return nil, err
				}
				tclk := clocks[0]
				tr, err := Characterize(u, corner, streams[fu], []float64{tclk})
				if err != nil {
					return nil, err
				}
				trueTERs[fu] = tr.TER(0)
				for _, m := range models {
					ter, err := m.TERFor(fu, corner, streams[fu], tclk)
					if err != nil {
						return nil, err
					}
					modelTERs[m.Name()][fu] = ter
				}
			}

			for imgIdx, img := range images {
				pt := QualityPoint{
					App: app, Corner: corner, Speedup: sp, Image: imgIdx,
					PSNR:       make(map[string]float64),
					Acceptable: make(map[string]bool),
				}
				ptSeed := opts.Seed ^ int64(imgIdx)<<16 ^ int64(total)
				psnr, _, err := app.QualityRun(img, trueTERs, ptSeed)
				if err != nil {
					return nil, err
				}
				pt.TruePSNR = psnr
				pt.TrueAcceptable = psnr >= imaging.AcceptableThresholdDB
				for _, m := range models {
					p, _, err := app.QualityRun(img, modelTERs[m.Name()], ptSeed+1)
					if err != nil {
						return nil, err
					}
					pt.PSNR[m.Name()] = p
					ok := p >= imaging.AcceptableThresholdDB
					pt.Acceptable[m.Name()] = ok
					if ok == pt.TrueAcceptable {
						matches[m.Name()]++
					}
				}
				res.Points = append(res.Points, pt)
				total++
			}
		}
	}
	if total == 0 {
		return nil, fmt.Errorf("core: quality study evaluated no points")
	}
	for _, m := range models {
		res.EstimationAccuracy[m.Name()] = float64(matches[m.Name()]) / float64(total)
	}
	return res, nil
}

// MeanPSNRGap reports the mean absolute PSNR difference between a
// model's injected outputs and the ground-truth injected outputs,
// ignoring points where either PSNR is infinite (identical images).
func (r *QualityResult) MeanPSNRGap(model string) float64 {
	var sum float64
	n := 0
	for _, pt := range r.Points {
		p, ok := pt.PSNR[model]
		if !ok || math.IsInf(p, 0) || math.IsInf(pt.TruePSNR, 0) {
			continue
		}
		sum += math.Abs(p - pt.TruePSNR)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
