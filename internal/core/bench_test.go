package core

import (
	"fmt"
	"runtime"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/workload"
)

// BenchmarkCharacterizeParallel measures the sharded DTA hot path:
// cycles simulated per second at Workers:1 (the sequential baseline)
// and at the machine's parallel width. The cycles/s metric is what
// scripts/benchdiff.sh tracks across commits.
func BenchmarkCharacterizeParallel(b *testing.B) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		b.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 50}
	stream := workload.Random(false, 4096, 11)
	clocks := []float64{600}
	// Warm the STA cache so the benchmark sees only simulation cost.
	if _, err := u.Static(corner); err != nil {
		b.Fatal(err)
	}
	workers := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workers = append(workers, p)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cycles := stream.Len() - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// MemoOff pins this benchmark to the uncached kernel so its
				// cycles/s stays comparable across the committed baselines;
				// BenchmarkCharacterizeMemo owns the cached numbers.
				tr, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: w, MemoOff: true})
				if err != nil {
					b.Fatal(err)
				}
				if tr.Cycles() != cycles {
					b.Fatalf("trace has %d cycles; want %d", tr.Cycles(), cycles)
				}
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}

// BenchmarkCharacterizeMemo is the acceptance benchmark for the
// transition memo: characterization throughput on a real imaging operand
// stream (Sobel over 8 synthetic 32x32 images, INT_MUL native stream),
// memo on vs off. The on-variant also reports the memo hit rate; the
// speedup over memo=off tracks 1/(1-hitrate) because the hit path costs
// almost nothing next to an INT_MUL event cascade.
func BenchmarkCharacterizeMemo(b *testing.B) {
	rec := inject.NewRecording(20000)
	for _, img := range imaging.SyntheticSet(8, 32, 32) {
		inject.SobelApp.Run(img, rec)
	}
	stream, err := rec.Stream(circuits.IntMul32)
	if err != nil {
		b.Fatal(err)
	}
	stream.Name = "sobel_bench"
	u, err := NewFUnit(circuits.IntMul32)
	if err != nil {
		b.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 50}
	clocks := []float64{600}
	if _, err := u.Static(corner); err != nil {
		b.Fatal(err)
	}
	for _, memoOff := range []bool{false, true} {
		name := "memo=on"
		if memoOff {
			name = "memo=off"
		}
		b.Run(name, func(b *testing.B) {
			cycles := stream.Len() - 1
			var hits, misses int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: 1, MemoOff: memoOff})
				if err != nil {
					b.Fatal(err)
				}
				hits, misses = tr.MemoHits, tr.MemoMisses
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
			if hits+misses > 0 {
				b.ReportMetric(100*float64(hits)/float64(hits+misses), "hit%")
			}
		})
	}
}
