package core

import (
	"fmt"
	"runtime"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// BenchmarkCharacterizeParallel measures the sharded DTA hot path:
// cycles simulated per second at Workers:1 (the sequential baseline)
// and at the machine's parallel width. The cycles/s metric is what
// scripts/benchdiff.sh tracks across commits.
func BenchmarkCharacterizeParallel(b *testing.B) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		b.Fatal(err)
	}
	corner := cells.Corner{V: 0.85, T: 50}
	stream := workload.Random(false, 4096, 11)
	clocks := []float64{600}
	// Warm the STA cache so the benchmark sees only simulation cost.
	if _, err := u.Static(corner); err != nil {
		b.Fatal(err)
	}
	workers := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		workers = append(workers, p)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cycles := stream.Len() - 1
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := CharacterizeOpts(u, corner, stream, clocks, CharacterizeOptions{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if tr.Cycles() != cycles {
					b.Fatalf("trace has %d cycles; want %d", tr.Cycles(), cycles)
				}
			}
			b.ReportMetric(float64(cycles)*float64(b.N)/b.Elapsed().Seconds(), "cycles/s")
		})
	}
}
