package core

import (
	"context"
	"fmt"
	"sync"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/netlist"
	"tevot/internal/obs"
	"tevot/internal/place"
	"tevot/internal/sim"
	"tevot/internal/sta"
	"tevot/internal/workload"
)

// STA cache observability: a paper-scale sweep asks for the same
// corner's timing thousands of times; hit/miss counters make a cold (or
// epoch-invalidated) cache visible at /debug/vars instead of showing up
// only as mysteriously slow cells. Singleflight waiters count as hits:
// they pay a wait, not an analysis.
var (
	mSTAHits   = obs.NewCounter("sta.cache_hits")
	mSTAMisses = obs.NewCounter("sta.cache_misses")
)

// FUnit bundles a functional unit's gate-level netlist with cached
// per-corner static timing results — the "synthesized design plus its
// corner SDFs" of the paper's flow.
type FUnit struct {
	FU   circuits.FU
	NL   *netlist.Netlist
	Opts sta.Options

	mu       sync.Mutex
	cache    map[cells.Corner]*sta.Result
	base     map[cells.Corner]float64 // measured error-free clock overrides
	inflight map[cells.Corner]*staCall
	epoch    uint64 // bumped by EnableLayout; stale analyses are not cached
	staRuns  int    // analyses actually executed (observability for tests)
}

// staCall is one in-flight STA analysis shared by every concurrent
// Static caller at the same corner (singleflight).
type staCall struct {
	done chan struct{}
	res  *sta.Result
	err  error
}

// NewFUnit builds the netlist for fu with default STA options.
func NewFUnit(fu circuits.FU) (*FUnit, error) {
	end := obs.Time("netlist.build")
	nl, err := fu.Build()
	end()
	if err != nil {
		return nil, err
	}
	return &FUnit{
		FU:    fu,
		NL:    nl,
		Opts:  sta.DefaultOptions(),
		cache: make(map[cells.Corner]*sta.Result),
		base:  make(map[cells.Corner]float64),
	}, nil
}

// Static returns (and caches) the STA result at a corner. Concurrent
// callers at the same uncached corner share a single analysis: the first
// runs sta.Analyze, the rest block on its completion (singleflight), so
// a sharded characterization never duplicates the STA work.
func (u *FUnit) Static(c cells.Corner) (*sta.Result, error) {
	u.mu.Lock()
	if res, ok := u.cache[c]; ok {
		u.mu.Unlock()
		mSTAHits.Inc()
		return res, nil
	}
	if call, ok := u.inflight[c]; ok {
		u.mu.Unlock()
		mSTAHits.Inc()
		<-call.done
		return call.res, call.err
	}
	call := &staCall{done: make(chan struct{})}
	if u.inflight == nil {
		u.inflight = make(map[cells.Corner]*staCall)
	}
	u.inflight[c] = call
	epoch := u.epoch
	opts := u.Opts
	u.staRuns++
	u.mu.Unlock()

	mSTAMisses.Inc()
	end := obs.Time("sta.analyze")
	call.res, call.err = sta.Analyze(u.NL, c, opts)
	end()

	u.mu.Lock()
	if u.inflight[c] == call {
		delete(u.inflight, c)
	}
	// Don't cache results computed against options that EnableLayout has
	// since replaced; the waiters still get this (pre-layout) result, as
	// they asked before the switch.
	if call.err == nil && epoch == u.epoch {
		u.cache[c] = call.res
	}
	u.mu.Unlock()
	close(call.done)
	return call.res, call.err
}

// NewRunner creates an event-driven simulator annotated for the corner.
// Runners are not concurrency-safe; create one per goroutine.
func (u *FUnit) NewRunner(c cells.Corner) (*sim.Runner, error) {
	res, err := u.Static(c)
	if err != nil {
		return nil, err
	}
	return sim.NewRunner(u.NL, res.GateDelay)
}

// NewRefRunner is NewRunner on the reference heap kernel — the
// differential oracle. Characterizations run with it are bit-identical
// to the fast kernel's, just slower; use it to audit a suspect result.
func (u *FUnit) NewRefRunner(c cells.Corner) (*sim.Runner, error) {
	res, err := u.Static(c)
	if err != nil {
		return nil, err
	}
	return sim.NewRefRunner(u.NL, res.GateDelay)
}

// BaseClock returns the fastest error-free clock period (ps) at a
// corner. If a measured base was installed with SetBaseClock (the max
// dynamic delay observed during characterization — the paper's "fastest
// error-free clock frequency" for the unit), that is used; otherwise the
// STA critical-path delay is the conservative fallback. Speeding the
// clock beyond this is what creates the timing errors TEVoT predicts.
func (u *FUnit) BaseClock(c cells.Corner) (float64, error) {
	u.mu.Lock()
	base, ok := u.base[c]
	u.mu.Unlock()
	if ok {
		return base, nil
	}
	res, err := u.Static(c)
	if err != nil {
		return 0, err
	}
	return res.Delay, nil
}

// SetBaseClock installs the measured error-free clock period at a
// corner. Characterization workflows call this with the max dynamic
// delay observed on the unit's rated (training) workload, so that the
// grid's clock speedups actually produce the error tails the paper
// studies (the STA bound is rarely sensitized and would leave most
// corners error-free).
func (u *FUnit) SetBaseClock(c cells.Corner, ps float64) error {
	if ps <= 0 {
		return fmt.Errorf("core: non-positive base clock %v", ps)
	}
	u.mu.Lock()
	u.base[c] = ps
	u.mu.Unlock()
	return nil
}

// CalibrateBaseClock measures the unit's max dynamic delay over a stream
// at a corner and installs it as the base clock, returning it. This is
// the extra characterization pass that defines "fastest error-free
// clock" in the paper's experimental setup.
func (u *FUnit) CalibrateBaseClock(c cells.Corner, s *workload.Stream) (float64, error) {
	return u.CalibrateBaseClockContext(context.Background(), c, s)
}

// CalibrateBaseClockContext is CalibrateBaseClock with cooperative
// cancellation (see CharacterizeContext).
func (u *FUnit) CalibrateBaseClockContext(ctx context.Context, c cells.Corner, s *workload.Stream) (float64, error) {
	return u.CalibrateBaseClockOptsContext(ctx, c, s, CharacterizeOptions{})
}

// CalibrateBaseClockOptsContext is CalibrateBaseClockContext with
// explicit characterization options (see CharacterizeOptions).
func (u *FUnit) CalibrateBaseClockOptsContext(ctx context.Context, c cells.Corner, s *workload.Stream, opts CharacterizeOptions) (float64, error) {
	tr, err := CharacterizeOptsContext(ctx, u, c, s, nil, opts)
	if err != nil {
		return 0, err
	}
	if tr.MaxDelay <= 0 {
		return 0, fmt.Errorf("core: stream %q produced no output activity at %v", s.Name, c)
	}
	if err := u.SetBaseClock(c, tr.MaxDelay); err != nil {
		return 0, err
	}
	return tr.MaxDelay, nil
}

// ClockPeriods returns the periods (ps) for the given fractional
// speedups at a corner: base / (1 + s).
func (u *FUnit) ClockPeriods(c cells.Corner, speedups []float64) ([]float64, error) {
	base, err := u.BaseClock(c)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(speedups))
	for i, s := range speedups {
		if s <= 0 || s >= 1 {
			return nil, fmt.Errorf("core: speedup %v outside (0,1)", s)
		}
		out[i] = base / (1 + s)
	}
	return out, nil
}

// EnableLayout places the netlist and switches the unit's timing to the
// post-layout model: every gate's delay gains its placed interconnect
// component. Cached per-corner timing is discarded (it was pre-layout),
// as are measured base clocks.
func (u *FUnit) EnableLayout() error {
	pl, err := place.Place(u.NL)
	if err != nil {
		return err
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	u.Opts.Placement = pl
	u.Opts.Wire = place.DefaultWire()
	u.cache = make(map[cells.Corner]*sta.Result)
	u.base = make(map[cells.Corner]float64)
	// In-flight pre-layout analyses keep serving their waiters but must
	// not land in the fresh cache: the epoch bump marks them stale, and
	// dropping the map entries lets new callers start post-layout runs.
	u.epoch++
	u.inflight = nil
	return nil
}

// NewFUnitFromNetlist wraps an externally built netlist (e.g. an
// alternative adder topology for ablations) in a FUnit.
func NewFUnitFromNetlist(fu circuits.FU, nl *netlist.Netlist) (*FUnit, error) {
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return &FUnit{
		FU:    fu,
		NL:    nl,
		Opts:  sta.DefaultOptions(),
		cache: make(map[cells.Corner]*sta.Result),
		base:  make(map[cells.Corner]float64),
	}, nil
}

// NewFUnits builds all four functional units.
func NewFUnits() (map[circuits.FU]*FUnit, error) {
	units := make(map[circuits.FU]*FUnit, len(circuits.AllFUs))
	for _, fu := range circuits.AllFUs {
		u, err := NewFUnit(fu)
		if err != nil {
			return nil, err
		}
		units[fu] = u
	}
	return units, nil
}
