package core

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// TestModelFeatureImportance: on the FP adder the dynamic delay is
// dominated by the exponent fields (alignment shift distance), so the
// exponent-bit features must collectively outrank the low mantissa bits.
func TestModelFeatureImportance(t *testing.T) {
	u, err := NewFUnit(circuits.FPAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.9, T: 25}
	s := workload.RandomFloat(1501, 1e6, 61)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.FPAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	names, imp := m.FeatureImportance()
	if len(names) != 130 || len(imp) != 130 {
		t.Fatalf("importance shape %d/%d, want 130/130", len(names), len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("importance sums to %v, want 1", sum)
	}
	// The FP adder's delay is dominated by the alignment distance
	// (exponent fields, bits 23..30 of each operand) and the mantissa
	// carry chain; the single most informative feature must be an
	// exponent bit of one of the four operand words.
	top := m.TopFeatures(5)
	t.Logf("top-5 features: %v", top)
	isExpBit := func(name string) bool {
		for bit := 23; bit <= 30; bit++ {
			for _, f := range []string{"a", "b"} {
				if name == fmtBit("x[t].", f, bit) || name == fmtBit("x[t-1].", f, bit) {
					return true
				}
			}
		}
		return false
	}
	if !isExpBit(top[0]) {
		t.Errorf("top feature %q is not an exponent bit", top[0])
	}
}

func fmtBit(prefix, operand string, bit int) string {
	return prefix + operand + itoa(bit)
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

func TestTopFeaturesBounds(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 1, T: 25}
	tr, err := Characterize(u, c, workload.RandomInt(201, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.TopFeatures(5); len(got) != 5 {
		t.Errorf("TopFeatures(5) returned %d names", len(got))
	}
	if got := m.TopFeatures(1000); len(got) != 130 {
		t.Errorf("TopFeatures(1000) returned %d names, want 130", len(got))
	}
}
