package core

import (
	"fmt"
	"time"

	"tevot/internal/features"
	"tevot/internal/ml"
)

// MethodResult is one row of the paper's Table II: a learning method's
// timing-error classification accuracy and its training/testing time.
type MethodResult struct {
	Method    string
	Accuracy  float64
	TrainTime time.Duration
	TestTime  time.Duration
}

// CompareMethods reproduces Table II: it trains LR, k-NN, SVM, and a
// random forest on the same characterization data and scores their
// timing-error classification at clock index k of each trace.
//
// The regression-capable methods (LR, k-NN, RF) are trained on the
// dynamic delay and classify by comparing the predicted delay with the
// clock period — TEVoT's own formulation. The SVM, a pure classifier, is
// trained directly on the error labels. Distance/margin methods (k-NN,
// SVM) see standardized features.
func CompareMethods(train, test []*Trace, k int, seed int64) ([]MethodResult, error) {
	Xtr, ytr, etr, err := flatten(train, k)
	if err != nil {
		return nil, err
	}
	Xte, _, ete, err := flatten(test, k)
	if err != nil {
		return nil, err
	}
	testClocks, err := rowClocks(test, k)
	if err != nil {
		return nil, err
	}

	scaler, err := ml.FitScaler(Xtr)
	if err != nil {
		return nil, err
	}
	XtrS := scaler.Transform(Xtr)
	XteS := scaler.Transform(Xte)

	var results []MethodResult

	// LR: ridge regression on delay, thresholded at the clock.
	{
		m := ml.NewRidge(1e-6)
		t0 := time.Now()
		if err := m.Fit(Xtr, ytr); err != nil {
			return nil, err
		}
		trainT := time.Since(t0)
		t0 = time.Now()
		pred := make([]bool, len(Xte))
		for i := range Xte {
			pred[i] = m.Predict(Xte[i]) > testClocks[i]
		}
		testT := time.Since(t0)
		acc, err := ml.AccuracyBool(pred, ete)
		if err != nil {
			return nil, err
		}
		results = append(results, MethodResult{"LR", acc, trainT, testT})
	}

	// k-NN: delay regression by local interpolation, thresholded.
	{
		m := ml.NewKNN(5, ml.Regression)
		t0 := time.Now()
		if err := m.Fit(XtrS, ytr); err != nil {
			return nil, err
		}
		trainT := time.Since(t0)
		t0 = time.Now()
		delays := m.PredictBatch(XteS)
		pred := make([]bool, len(delays))
		for i, d := range delays {
			pred[i] = d > testClocks[i]
		}
		testT := time.Since(t0)
		acc, err := ml.AccuracyBool(pred, ete)
		if err != nil {
			return nil, err
		}
		results = append(results, MethodResult{"KNN", acc, trainT, testT})
	}

	// SVM: RBF-kernel classification of the error label via SMO — what
	// scikit-learn's SVC (the paper's tool) runs by default; its O(n²)
	// training and O(support-vectors) prediction produce Table II's
	// dominant time column. (ml.SVM is the cheaper linear alternative.)
	{
		m := ml.NewKernelSVM(1, 0, seed)
		lab := make([]float64, len(etr))
		for i, e := range etr {
			if e {
				lab[i] = 1
			}
		}
		t0 := time.Now()
		if err := m.Fit(XtrS, lab); err != nil {
			return nil, err
		}
		trainT := time.Since(t0)
		t0 = time.Now()
		pred := make([]bool, len(XteS))
		for i := range XteS {
			pred[i] = m.Predict(XteS[i]) == 1
		}
		testT := time.Since(t0)
		acc, err := ml.AccuracyBool(pred, ete)
		if err != nil {
			return nil, err
		}
		results = append(results, MethodResult{"SVM", acc, trainT, testT})
	}

	// RF: the paper's choice — delay regression forest, thresholded.
	{
		cfg := ml.DefaultForestConfig(ml.Regression)
		cfg.Seed = seed
		m := ml.NewRandomForest(cfg)
		t0 := time.Now()
		if err := m.Fit(Xtr, ytr); err != nil {
			return nil, err
		}
		trainT := time.Since(t0)
		t0 = time.Now()
		delays := m.PredictBatch(Xte)
		pred := make([]bool, len(delays))
		for i, d := range delays {
			pred[i] = d > testClocks[i]
		}
		testT := time.Since(t0)
		acc, err := ml.AccuracyBool(pred, ete)
		if err != nil {
			return nil, err
		}
		results = append(results, MethodResult{"RFC", acc, trainT, testT})
	}
	return results, nil
}

// flatten turns traces into (features, delay labels, error labels at
// clock k), with all feature rows carved out of one contiguous backing
// array.
func flatten(traces []*Trace, k int) (X [][]float64, y []float64, e []bool, err error) {
	total := 0
	for _, tr := range traces {
		if k >= len(tr.ClockPeriods) {
			return nil, nil, nil, fmt.Errorf("core: trace lacks clock index %d", k)
		}
		total += tr.Cycles()
	}
	if total == 0 {
		return nil, nil, nil, fmt.Errorf("core: no samples")
	}
	X = featureRows(total, features.Dim)
	y = make([]float64, 0, total)
	e = make([]bool, 0, total)
	row := 0
	for _, tr := range traces {
		pairs := tr.Stream.Pairs
		for i := 0; i < tr.Cycles(); i++ {
			features.VectorInto(X[row], tr.Corner, pairs[i+1], pairs[i])
			row++
			y = append(y, tr.Delays[i])
			e = append(e, tr.Errors[k][i])
		}
	}
	return X, y, e, nil
}

// rowClocks expands each trace's clock period at index k to one entry
// per cycle.
func rowClocks(traces []*Trace, k int) ([]float64, error) {
	var out []float64
	for _, tr := range traces {
		if k >= len(tr.ClockPeriods) {
			return nil, fmt.Errorf("core: trace lacks clock index %d", k)
		}
		for i := 0; i < tr.Cycles(); i++ {
			out = append(out, tr.ClockPeriods[k])
		}
	}
	return out, nil
}
