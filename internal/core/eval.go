package core

import (
	"fmt"

	"tevot/internal/ml"
)

// Evaluation is one model's score on one (trace, clock) combination.
type Evaluation struct {
	Model    string
	Clock    float64 // ps
	Accuracy float64 // Eq. 4: matched cycles / total cycles
	TERTrue  float64 // ground-truth timing-error rate
	TERPred  float64 // predicted timing-error rate
}

// EvaluateAt scores a predictor against the ground truth recorded in a
// characterization trace at clock index k — the paper's Eq. 4.
func EvaluateAt(p ErrorPredictor, tr *Trace, k int) (Evaluation, error) {
	if k < 0 || k >= len(tr.ClockPeriods) {
		return Evaluation{}, fmt.Errorf("core: clock index %d out of range (%d clocks)", k, len(tr.ClockPeriods))
	}
	tclk := tr.ClockPeriods[k]
	pred, err := p.Errors(tr.Corner, tr.Stream, tclk)
	if err != nil {
		return Evaluation{}, err
	}
	acc, err := ml.AccuracyBool(pred, tr.Errors[k])
	if err != nil {
		return Evaluation{}, err
	}
	np := 0
	for _, e := range pred {
		if e {
			np++
		}
	}
	return Evaluation{
		Model:    p.Name(),
		Clock:    tclk,
		Accuracy: acc,
		TERTrue:  tr.TER(k),
		TERPred:  float64(np) / float64(len(pred)),
	}, nil
}

// EvaluateAll scores a predictor across every clock of every trace and
// returns the flat list plus the mean accuracy — the aggregation behind
// each cell of the paper's Table III (averaged over operating conditions
// and clock speeds).
func EvaluateAll(p ErrorPredictor, traces []*Trace) ([]Evaluation, float64, error) {
	var evals []Evaluation
	sum := 0.0
	for _, tr := range traces {
		for k := range tr.ClockPeriods {
			ev, err := EvaluateAt(p, tr, k)
			if err != nil {
				return nil, 0, err
			}
			evals = append(evals, ev)
			sum += ev.Accuracy
		}
	}
	if len(evals) == 0 {
		return nil, 0, fmt.Errorf("core: nothing to evaluate")
	}
	return evals, sum / float64(len(evals)), nil
}
