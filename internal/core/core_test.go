package core

import (
	"math"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

func TestTableIGrid(t *testing.T) {
	g := TableIGrid()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	corners := g.Corners()
	if len(corners) != 100 {
		t.Fatalf("Table I grid has %d corners, want 100", len(corners))
	}
	if corners[0] != (cells.Corner{V: 0.81, T: 0}) {
		t.Errorf("first corner = %v", corners[0])
	}
	if corners[len(corners)-1] != (cells.Corner{V: 1.00, T: 100}) {
		t.Errorf("last corner = %v", corners[len(corners)-1])
	}
	if len(g.Speedups) != 3 || g.Speedups[0] != 0.05 || g.Speedups[2] != 0.15 {
		t.Errorf("speedups = %v", g.Speedups)
	}
	seen := make(map[cells.Corner]bool)
	for _, c := range corners {
		if seen[c] {
			t.Fatalf("duplicate corner %v", c)
		}
		seen[c] = true
	}
}

func TestFig3Corners(t *testing.T) {
	cs := Fig3Corners()
	if len(cs) != 9 {
		t.Fatalf("Fig. 3 subset has %d corners, want 9", len(cs))
	}
}

func TestGridValidation(t *testing.T) {
	bad := TableIGrid()
	bad.VStep = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero VStep")
	}
	bad = TableIGrid()
	bad.Speedups = []float64{1.5}
	if err := bad.Validate(); err == nil {
		t.Error("accepted speedup >= 1")
	}
}

func TestFUnitStaticCaching(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.9, T: 50}
	a, err := u.Static(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := u.Static(c)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Static result not cached")
	}
}

func TestBaseClockOverride(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 1.0, T: 25}
	staBase, err := u.BaseClock(c)
	if err != nil {
		t.Fatal(err)
	}
	if staBase <= 0 {
		t.Fatal("STA base clock should be positive")
	}
	if err := u.SetBaseClock(c, 123.5); err != nil {
		t.Fatal(err)
	}
	got, err := u.BaseClock(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != 123.5 {
		t.Errorf("override not honored: %v", got)
	}
	if err := u.SetBaseClock(c, -1); err == nil {
		t.Error("accepted negative base clock")
	}
	clocks, err := u.ClockPeriods(c, []float64{0.05, 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(clocks[0]-123.5/1.05) > 1e-9 || math.Abs(clocks[1]-123.5/1.10) > 1e-9 {
		t.Errorf("clock periods = %v", clocks)
	}
	if _, err := u.ClockPeriods(c, []float64{0}); err == nil {
		t.Error("accepted zero speedup")
	}
}

func TestCharacterizeBasics(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.85, T: 25}
	s := workload.RandomInt(201, 11)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cycles() != 200 {
		t.Fatalf("cycles = %d, want 200", tr.Cycles())
	}
	if tr.MaxDelay <= 0 || tr.MaxDelay > tr.StaticDelay {
		t.Errorf("max dynamic delay %v outside (0, static %v]", tr.MaxDelay, tr.StaticDelay)
	}
	if tr.MeanDelay() <= 0 || tr.MeanDelay() > tr.MaxDelay {
		t.Errorf("mean delay %v inconsistent", tr.MeanDelay())
	}
	// Errors at a clock equal to static delay: none.
	tr2, err := Characterize(u, c, s, []float64{tr.StaticDelay * 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if ter := tr2.TER(0); ter != 0 {
		t.Errorf("TER at above-static clock = %v, want 0", ter)
	}
	// Errors at a tiny clock: almost every active cycle errs.
	tr3, err := Characterize(u, c, s, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if ter := tr3.TER(0); ter < 0.9 {
		t.Errorf("TER at 1 ps clock = %v, want near 1", ter)
	}
	if _, err := Characterize(u, c, &workload.Stream{Name: "x"}, nil); err == nil {
		t.Error("accepted empty stream")
	}
}

func TestCalibrateBaseClock(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.9, T: 0}
	s := workload.RandomInt(301, 13)
	base, err := u.CalibrateBaseClock(c, s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := u.BaseClock(c)
	if err != nil {
		t.Fatal(err)
	}
	if got != base {
		t.Errorf("BaseClock = %v after calibration to %v", got, base)
	}
	static, err := u.Static(c)
	if err != nil {
		t.Fatal(err)
	}
	if base > static.Delay {
		t.Errorf("measured base %v exceeds static delay %v", base, static.Delay)
	}
	// At any positive speedup from the measured base, at least the
	// max-delay cycle must err... (its delay > base/(1+s)).
	tr, err := CharacterizeWithSpeedups(u, c, s, []float64{0.10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TER(0) == 0 {
		t.Error("10% speedup from the measured base produced no timing errors")
	}
}

// TestPipelineEndToEnd is the headline integration test: train TEVoT on
// random data at two corners and verify it beats all three baselines on
// held-out data, as in the paper's Table III.
func TestPipelineEndToEnd(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	corners := []cells.Corner{{V: 0.81, T: 25}, {V: 0.95, T: 75}}
	speedups := []float64{0.05, 0.15}

	var trainTraces, testTraces []*Trace
	for ci, c := range corners {
		train := workload.RandomInt(2501, int64(100+ci))
		test := workload.RandomInt(801, int64(200+ci))
		if _, err := u.CalibrateBaseClock(c, train); err != nil {
			t.Fatal(err)
		}
		trTrain, err := CharacterizeWithSpeedups(u, c, train, speedups)
		if err != nil {
			t.Fatal(err)
		}
		trTest, err := CharacterizeWithSpeedups(u, c, test, speedups)
		if err != nil {
			t.Fatal(err)
		}
		trainTraces = append(trainTraces, trTrain)
		testTraces = append(testTraces, trTest)
	}

	tevot, err := Train(circuits.IntAdd32, trainTraces, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nhCfg := DefaultConfig()
	nhCfg.History = false
	tevotNH, err := Train(circuits.IntAdd32, trainTraces, nhCfg)
	if err != nil {
		t.Fatal(err)
	}
	delayBased, err := NewDelayBased(circuits.IntAdd32, trainTraces)
	if err != nil {
		t.Fatal(err)
	}
	terBased, err := NewTERBased(circuits.IntAdd32, trainTraces, 1)
	if err != nil {
		t.Fatal(err)
	}

	_, accTEVoT, err := EvaluateAll(tevot, testTraces)
	if err != nil {
		t.Fatal(err)
	}
	_, accNH, err := EvaluateAll(tevotNH, testTraces)
	if err != nil {
		t.Fatal(err)
	}
	_, accDelay, err := EvaluateAll(delayBased, testTraces)
	if err != nil {
		t.Fatal(err)
	}
	_, accTER, err := EvaluateAll(terBased, testTraces)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("TEVoT %.4f | NH %.4f | Delay-based %.4f | TER-based %.4f",
		accTEVoT, accNH, accDelay, accTER)

	if accTEVoT < 0.90 {
		t.Errorf("TEVoT accuracy %.4f below 0.90", accTEVoT)
	}
	if accTEVoT <= accDelay {
		t.Errorf("TEVoT (%.4f) should beat Delay-based (%.4f)", accTEVoT, accDelay)
	}
	if accTEVoT+1e-9 < accTER {
		t.Errorf("TEVoT (%.4f) should be at least TER-based (%.4f)", accTEVoT, accTER)
	}
	if accDelay > 0.5 {
		t.Errorf("Delay-based (%.4f) should be pessimistic (predicts all-error)", accDelay)
	}
	if accTEVoT+0.02 < accNH {
		t.Errorf("history features should not hurt: TEVoT %.4f vs NH %.4f", accTEVoT, accNH)
	}
}

func TestTrainRejectsMixedFUs(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 1, T: 25}
	tr, err := Characterize(u, c, workload.RandomInt(51, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(circuits.IntMul32, []*Trace{tr}, DefaultConfig()); err == nil {
		t.Error("Train accepted a trace from another FU")
	}
	if _, err := Train(circuits.IntAdd32, nil, DefaultConfig()); err == nil {
		t.Error("Train accepted no traces")
	}
}

func TestDelayBasedRequiresOfflineCorner(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 1, T: 25}
	tr, err := Characterize(u, c, workload.RandomInt(51, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDelayBased(circuits.IntAdd32, []*Trace{tr})
	if err != nil {
		t.Fatal(err)
	}
	other := cells.Corner{V: 0.81, T: 0}
	if _, err := d.Errors(other, tr.Stream, 100); err == nil {
		t.Error("Delay-based answered for an uncharacterized corner")
	}
}

func TestGroundTruthPredictor(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.85, T: 50}
	tr, err := Characterize(u, c, workload.RandomInt(101, 3), []float64{500})
	if err != nil {
		t.Fatal(err)
	}
	g := &GroundTruth{Trace: tr}
	ev, err := EvaluateAt(g, tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Accuracy != 1 {
		t.Errorf("ground truth against itself = %v, want 1", ev.Accuracy)
	}
	if _, err := g.Errors(cells.Corner{V: 1, T: 0}, tr.Stream, 500); err == nil {
		t.Error("ground truth answered for wrong corner")
	}
	if _, err := g.Errors(c, tr.Stream, 123); err == nil {
		t.Error("ground truth answered for unknown clock")
	}
}

func TestPredictDelaysConsistency(t *testing.T) {
	u, err := NewFUnit(circuits.IntAdd32)
	if err != nil {
		t.Fatal(err)
	}
	c := cells.Corner{V: 0.9, T: 25}
	s := workload.RandomInt(401, 5)
	tr, err := Characterize(u, c, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Train(circuits.IntAdd32, []*Trace{tr}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	delays, err := m.PredictDelays(c, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(delays) != s.Len()-1 {
		t.Fatalf("got %d delay predictions for %d cycles", len(delays), s.Len()-1)
	}
	// Point API agrees with batch API.
	for _, i := range []int{0, 10, 100} {
		d := m.PredictDelay(c, s.Pairs[i+1], s.Pairs[i])
		if d != delays[i] {
			t.Fatalf("cycle %d: point %v != batch %v", i, d, delays[i])
		}
	}
	// Predicting errors at clock 0 marks everything with positive
	// predicted delay.
	errs, err := m.PredictErrors(c, s, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range errs {
		if errs[i] != (delays[i] > 0) {
			t.Fatal("PredictErrors inconsistent with PredictDelays")
		}
	}
}
