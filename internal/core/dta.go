package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/obs"
	"tevot/internal/sim"
	"tevot/internal/workload"
)

// Observability: the cycle loop counts simulated cycles (one atomic add
// per cycle — TestMetricsHotPathAllocs pins the primitive at 0 allocs,
// and BenchmarkCharacterizeParallel gates the cost); events merge once
// per shard. The simulate/merge spans feed the per-run stage table.
var (
	mCyclesSimulated = obs.NewCounter("core.cycles_simulated")
	mSimEvents       = obs.NewCounter("core.sim_events")

	// Transition-memo accounting, merged once per characterization from
	// the per-shard runners; the gauge tracks the latest run's mean
	// fraction of gates the bitslice window proved cold.
	mMemoHits        = obs.NewCounter("sim.memo_hits")
	mMemoMisses      = obs.NewCounter("sim.memo_misses")
	mMemoEvictions   = obs.NewCounter("sim.memo_evictions")
	gSlicePrunedFrac = obs.NewGauge("sim.slice_pruned_gates")
)

// Trace is the outcome of dynamic timing analysis for one functional
// unit, corner, and operand stream: the per-cycle dynamic delays and,
// for each clock period of interest, the ground-truth timing errors
// (sampled-vs-settled mismatch, as a register bank would experience).
//
// Cycle i applies Stream.Pairs[i+1] with the circuit settled at
// Stream.Pairs[i]; there are Stream.Len()-1 cycles.
type Trace struct {
	FU     circuits.FU
	Corner cells.Corner
	Stream *workload.Stream

	// Delays[i] is cycle i's dynamic delay in ps.
	Delays []float64
	// ClockPeriods are the capture periods (ps) Errors was evaluated at.
	ClockPeriods []float64
	// Errors[k][i] reports whether cycle i mis-samples at ClockPeriods[k].
	Errors [][]bool

	// StaticDelay is the STA critical-path delay at the corner.
	StaticDelay float64
	// MaxDelay is the largest observed dynamic delay.
	MaxDelay float64
	// Events is the total number of simulation events (effort metric).
	// A cycle served from the transition memo reports its cached event
	// count, so Events is identical with the cache on or off.
	Events int

	// MemoHits/MemoMisses/MemoEvictions aggregate the per-shard
	// transition-memo counters (all zero when the memo is off).
	MemoHits      int64
	MemoMisses    int64
	MemoEvictions int64
	// SliceWindows and SlicePrunedGateWindows aggregate the bitslice
	// prepass counters: windows engaged, and gate-windows proved cold.
	SliceWindows           int64
	SlicePrunedGateWindows int64
}

// Cycles returns the number of simulated cycles.
func (t *Trace) Cycles() int { return len(t.Delays) }

// HitRate returns the transition-memo hit rate of the characterization,
// MemoHits / (MemoHits + MemoMisses); 0 when the memo was off.
func (t *Trace) HitRate() float64 {
	if t.MemoHits+t.MemoMisses == 0 {
		return 0
	}
	return float64(t.MemoHits) / float64(t.MemoHits+t.MemoMisses)
}

// TER returns the measured timing-error rate at clock index k.
func (t *Trace) TER(k int) float64 {
	if k < 0 || k >= len(t.Errors) || len(t.Errors[k]) == 0 {
		return 0
	}
	n := 0
	for _, e := range t.Errors[k] {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(t.Errors[k]))
}

// MeanDelay returns the average dynamic delay (the quantity the paper
// plots in Fig. 3).
func (t *Trace) MeanDelay() float64 {
	if len(t.Delays) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range t.Delays {
		s += d
	}
	return s / float64(len(t.Delays))
}

// CharacterizeOptions tunes how the DTA simulation executes. The zero
// value is the default strategy (parallel over GOMAXPROCS shards).
type CharacterizeOptions struct {
	// Workers is the number of parallel stream shards, each simulated by
	// its own sim.Runner. <= 0 means GOMAXPROCS; 1 forces the sequential
	// path. Results are bit-identical regardless of the value: a shard
	// starting at cycle i settles the circuit at stream pair i, which is
	// exactly the state the streaming simulation would have left behind
	// (the settled state of an acyclic circuit is its zero-delay
	// evaluation, independent of event history).
	//
	// When characterizations already run on a cell-level worker pool
	// (internal/runner), pick Workers ≈ GOMAXPROCS / pool-workers so the
	// two levels compose without oversubscription.
	Workers int

	// RefKernel simulates on the reference heap kernel instead of the
	// default calendar-queue kernel. The two are bit-identical (the sim
	// package's differential suite enforces it), so this only trades
	// speed for an independent code path — an audit tool, not a mode.
	// RefKernel also implies MemoOff: the oracle stays a pure,
	// unaccelerated second opinion.
	RefKernel bool

	// MemoOff disables the per-runner transition memo cache. The memo is
	// on by default because it is bit-identical to the uncached kernel
	// (a cycle's outcome is a pure function of the (prev, cur) input
	// transition for a fixed netlist and delay annotation — the same
	// purity that makes sharding exact, see above); turn it off for
	// streams with no transition repeats, where lookups are pure
	// overhead.
	MemoOff bool
	// MemoSize caps the memo at that many cached transitions (LRU
	// beyond it); <= 0 selects sim.DefaultMemoSize.
	MemoSize int
}

// memoOn reports whether characterization should enable the transition
// memo (and its bitslice window prepass) on its runners.
func (o CharacterizeOptions) memoOn() bool { return !o.MemoOff && !o.RefKernel }

// ParseMemoSetting parses a CLI -memo flag value: "on" (default cache
// size), "off", or a positive integer entry cap.
func ParseMemoSetting(s string) (opts struct {
	MemoOff  bool
	MemoSize int
}, err error) {
	switch s {
	case "", "on":
		return opts, nil
	case "off":
		opts.MemoOff = true
		return opts, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return opts, fmt.Errorf("core: -memo wants on, off, or a positive entry cap; got %q", s)
	}
	opts.MemoSize = n
	return opts, nil
}

// shardCount resolves the effective shard count for an n-cycle stream:
// the configured worker budget, capped so each shard keeps at least
// minShardCycles cycles (below that the per-shard settle + runner setup
// dominates any win).
const minShardCycles = 64

func (o CharacterizeOptions) shardCount(n int) int {
	k := o.Workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if maxK := n / minShardCycles; k > maxK {
		k = maxK
	}
	if k < 1 {
		k = 1
	}
	return k
}

// Characterize runs back-annotated gate-level simulation of the unit at
// a corner over the stream — the paper's DTA phase. clocks lists the
// capture periods (ps) at which ground-truth errors are evaluated; it
// may be empty when only delays are needed (e.g. Fig. 3).
func Characterize(u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64) (*Trace, error) {
	return CharacterizeContext(context.Background(), u, corner, s, clocks)
}

// CharacterizeOpts is Characterize with explicit execution options.
func CharacterizeOpts(u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64, opts CharacterizeOptions) (*Trace, error) {
	return CharacterizeOptsContext(context.Background(), u, corner, s, clocks, opts)
}

// validateCharacterizeInputs rejects the inputs that would otherwise
// surface as indexing panics deep in the simulator (nil unit or stream)
// or as silent garbage (non-positive or NaN capture clocks, NaN float
// operands, which propagate NaN delays through every downstream model).
func validateCharacterizeInputs(u *FUnit, s *workload.Stream, clocks []float64) error {
	if u == nil {
		return fmt.Errorf("core: Characterize called with a nil functional unit")
	}
	if u.NL == nil {
		return fmt.Errorf("core: functional unit %v has no netlist", u.FU)
	}
	if s == nil {
		return fmt.Errorf("core: Characterize called with a nil operand stream")
	}
	if s.Len() < 2 {
		return fmt.Errorf("core: stream %q has %d pairs; need at least 2", s.Name, s.Len())
	}
	for k, c := range clocks {
		if math.IsNaN(c) {
			return fmt.Errorf("core: capture clock %d is NaN", k)
		}
		if c <= 0 {
			return fmt.Errorf("core: capture clock %d is %v ps; periods must be positive", k, c)
		}
	}
	if u.FU.IsFloat() {
		for i, p := range s.Pairs {
			fa := circuits.Float32FromBits(p.A)
			fb := circuits.Float32FromBits(p.B)
			if fa != fa || fb != fb {
				return fmt.Errorf("core: stream %q pair %d holds a NaN operand for float unit %v", s.Name, i, u.FU)
			}
		}
	}
	return nil
}

// CharacterizeContext is Characterize with cooperative cancellation: the
// simulation loop checks ctx every few hundred cycles, so a sweep
// runner's per-task deadline or a SIGINT aborts a multi-minute cell
// promptly instead of leaking it to completion in the background.
func CharacterizeContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64) (*Trace, error) {
	return CharacterizeOptsContext(ctx, u, corner, s, clocks, CharacterizeOptions{})
}

// CharacterizeOptsContext is the full-control characterization entry
// point: cooperative cancellation plus sharded parallel simulation.
//
// Sharding argument: cycle i's dynamic delay depends only on the settled
// state at pair i and the transition to pair i+1. Because the netlist is
// acyclic, the settled state after any cycle equals the zero-delay
// evaluation of that cycle's input vector — it carries no event history.
// Splitting the stream into contiguous chunks and settling each worker's
// runner at its chunk's boundary pair therefore reproduces the exact
// per-cycle results of the sequential streaming run, in any shard count.
func CharacterizeOptsContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64, opts CharacterizeOptions) (*Trace, error) {
	if err := validateCharacterizeInputs(u, s, clocks); err != nil {
		return nil, err
	}
	static, err := u.Static(corner)
	if err != nil {
		return nil, err
	}
	n := s.Len() - 1
	tr := &Trace{
		FU:           u.FU,
		Corner:       corner,
		Stream:       s,
		Delays:       make([]float64, n),
		ClockPeriods: append([]float64(nil), clocks...),
		Errors:       make([][]bool, len(clocks)),
		StaticDelay:  static.Delay,
	}
	for k := range tr.Errors {
		tr.Errors[k] = make([]bool, n)
	}

	shards := opts.shardCount(n)
	// Create every runner up front (and sequentially fail fast): they all
	// share the one cached/singleflighted STA result.
	runners := make([]*sim.Runner, shards)
	newRunner := u.NewRunner
	if opts.RefKernel {
		newRunner = u.NewRefRunner
	}
	memo := opts.memoOn()
	for w := range runners {
		if runners[w], err = newRunner(corner); err != nil {
			return nil, err
		}
		if memo {
			runners[w].EnableMemo(opts.MemoSize)
		}
	}

	// obs.Span (not obs.Time): when a dist worker runs this cell under
	// a request-scoped trace, dta.simulate/dta.merge appear as child
	// spans of the cell's trace; untraced runs pay a nil no-op.
	simCtx, endSim := obs.Span(ctx, "dta.simulate")
	events := make([]int, shards)
	maxes := make([]float64, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo, hi := w*n/shards, (w+1)*n/shards
		if shards == 1 {
			// Sequential path: run inline, no goroutine.
			errs[0] = characterizeShard(simCtx, runners[0], s, clocks, tr, lo, hi, &events[0], &maxes[0], memo)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = characterizeShard(simCtx, runners[w], s, clocks, tr, lo, hi, &events[w], &maxes[w], memo)
		}(w, lo, hi)
	}
	wg.Wait()
	endSim()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	_, endMerge := obs.Span(ctx, "dta.merge")
	for w := 0; w < shards; w++ {
		tr.Events += events[w]
		if maxes[w] > tr.MaxDelay {
			tr.MaxDelay = maxes[w]
		}
	}
	if memo {
		var ss sim.SliceStats
		for _, r := range runners {
			ms := r.MemoStats()
			tr.MemoHits += ms.Hits
			tr.MemoMisses += ms.Misses
			tr.MemoEvictions += ms.Evictions
			rs := r.SliceStats()
			tr.SliceWindows += rs.Windows
			tr.SlicePrunedGateWindows += rs.PrunedGateWindows
			ss.Gates = rs.Gates
		}
		ss.Windows = tr.SliceWindows
		ss.PrunedGateWindows = tr.SlicePrunedGateWindows
		mMemoHits.Add(tr.MemoHits)
		mMemoMisses.Add(tr.MemoMisses)
		mMemoEvictions.Add(tr.MemoEvictions)
		gSlicePrunedFrac.Set(ss.PrunedFraction())
	}
	endMerge()
	mSimEvents.Add(int64(tr.Events))
	return tr, nil
}

// characterizeShard simulates cycles [lo, hi) of the stream on its own
// runner, settling the circuit at pair lo first, and writes the
// per-cycle results into the shard's disjoint region of tr.
//
// With the memo on, the shard also declares upcoming input vectors to
// the runner in bitslice windows (sim.BeginWindow): the window's one
// bit-parallel zero-delay sweep turns each post-hit re-settle into lane
// extraction over the window's dirty nets.
func characterizeShard(ctx context.Context, r *sim.Runner, s *workload.Stream, clocks []float64, tr *Trace, lo, hi int, events *int, maxDelay *float64, memo bool) error {
	prev := make([]bool, circuits.OperandBits)
	cur := make([]bool, circuits.OperandBits)
	var winVecs [][]bool
	if memo {
		back := make([]bool, sim.WindowMax*circuits.OperandBits)
		winVecs = make([][]bool, sim.WindowMax)
		for k := range winVecs {
			winVecs[k] = back[k*circuits.OperandBits : (k+1)*circuits.OperandBits]
		}
	}
	winEnd := lo + 1 // first cycle runs un-windowed to key the memo
	circuits.EncodeOperandsInto(s.Pairs[lo].A, s.Pairs[lo].B, prev)
	for i := lo; i < hi; i++ {
		if (i-lo)&255 == 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
		}
		if memo && i >= winEnd {
			m := hi - i
			if m > sim.WindowMax {
				m = sim.WindowMax
			}
			for k := 0; k < m; k++ {
				circuits.EncodeOperandsInto(s.Pairs[i+1+k].A, s.Pairs[i+1+k].B, winVecs[k])
			}
			if err := r.BeginWindow(winVecs[:m]); err != nil {
				return err
			}
			winEnd = i + m
		}
		circuits.EncodeOperandsInto(s.Pairs[i+1].A, s.Pairs[i+1].B, cur)
		cy, err := r.Cycle(prev, cur)
		if err != nil {
			return err
		}
		mCyclesSimulated.Inc()
		tr.Delays[i] = cy.Delay
		*events += cy.Events
		if cy.Delay > *maxDelay {
			*maxDelay = cy.Delay
		}
		init := r.InitialOutputs()
		for k, tclk := range clocks {
			tr.Errors[k][i] = cy.ErrorAt(init, tclk)
		}
		prev = nil // streaming mode: the runner keeps its settled state
	}
	return nil
}

// CharacterizeWithSpeedups is Characterize with the capture periods
// derived from the unit's error-free base clock at the corner:
// period_s = base / (1 + s) for each fractional speedup s.
func CharacterizeWithSpeedups(u *FUnit, corner cells.Corner, s *workload.Stream, speedups []float64) (*Trace, error) {
	return CharacterizeWithSpeedupsContext(context.Background(), u, corner, s, speedups)
}

// CharacterizeWithSpeedupsContext is CharacterizeWithSpeedups with
// cooperative cancellation (see CharacterizeContext).
func CharacterizeWithSpeedupsContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, speedups []float64) (*Trace, error) {
	return CharacterizeWithSpeedupsOptsContext(ctx, u, corner, s, speedups, CharacterizeOptions{})
}

// CharacterizeWithSpeedupsOptsContext is CharacterizeWithSpeedupsContext
// with explicit execution options (see CharacterizeOptions).
func CharacterizeWithSpeedupsOptsContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, speedups []float64, opts CharacterizeOptions) (*Trace, error) {
	if u == nil {
		return nil, fmt.Errorf("core: CharacterizeWithSpeedups called with a nil functional unit")
	}
	clocks, err := u.ClockPeriods(corner, speedups)
	if err != nil {
		return nil, err
	}
	return CharacterizeOptsContext(ctx, u, corner, s, clocks, opts)
}
