package core

import (
	"context"
	"fmt"
	"math"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/workload"
)

// Trace is the outcome of dynamic timing analysis for one functional
// unit, corner, and operand stream: the per-cycle dynamic delays and,
// for each clock period of interest, the ground-truth timing errors
// (sampled-vs-settled mismatch, as a register bank would experience).
//
// Cycle i applies Stream.Pairs[i+1] with the circuit settled at
// Stream.Pairs[i]; there are Stream.Len()-1 cycles.
type Trace struct {
	FU     circuits.FU
	Corner cells.Corner
	Stream *workload.Stream

	// Delays[i] is cycle i's dynamic delay in ps.
	Delays []float64
	// ClockPeriods are the capture periods (ps) Errors was evaluated at.
	ClockPeriods []float64
	// Errors[k][i] reports whether cycle i mis-samples at ClockPeriods[k].
	Errors [][]bool

	// StaticDelay is the STA critical-path delay at the corner.
	StaticDelay float64
	// MaxDelay is the largest observed dynamic delay.
	MaxDelay float64
	// Events is the total number of simulation events (effort metric).
	Events int
}

// Cycles returns the number of simulated cycles.
func (t *Trace) Cycles() int { return len(t.Delays) }

// TER returns the measured timing-error rate at clock index k.
func (t *Trace) TER(k int) float64 {
	if k < 0 || k >= len(t.Errors) || len(t.Errors[k]) == 0 {
		return 0
	}
	n := 0
	for _, e := range t.Errors[k] {
		if e {
			n++
		}
	}
	return float64(n) / float64(len(t.Errors[k]))
}

// MeanDelay returns the average dynamic delay (the quantity the paper
// plots in Fig. 3).
func (t *Trace) MeanDelay() float64 {
	if len(t.Delays) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range t.Delays {
		s += d
	}
	return s / float64(len(t.Delays))
}

// Characterize runs back-annotated gate-level simulation of the unit at
// a corner over the stream — the paper's DTA phase. clocks lists the
// capture periods (ps) at which ground-truth errors are evaluated; it
// may be empty when only delays are needed (e.g. Fig. 3).
func Characterize(u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64) (*Trace, error) {
	return CharacterizeContext(context.Background(), u, corner, s, clocks)
}

// validateCharacterizeInputs rejects the inputs that would otherwise
// surface as indexing panics deep in the simulator (nil unit or stream)
// or as silent garbage (non-positive or NaN capture clocks, NaN float
// operands, which propagate NaN delays through every downstream model).
func validateCharacterizeInputs(u *FUnit, s *workload.Stream, clocks []float64) error {
	if u == nil {
		return fmt.Errorf("core: Characterize called with a nil functional unit")
	}
	if u.NL == nil {
		return fmt.Errorf("core: functional unit %v has no netlist", u.FU)
	}
	if s == nil {
		return fmt.Errorf("core: Characterize called with a nil operand stream")
	}
	if s.Len() < 2 {
		return fmt.Errorf("core: stream %q has %d pairs; need at least 2", s.Name, s.Len())
	}
	for k, c := range clocks {
		if math.IsNaN(c) {
			return fmt.Errorf("core: capture clock %d is NaN", k)
		}
		if c <= 0 {
			return fmt.Errorf("core: capture clock %d is %v ps; periods must be positive", k, c)
		}
	}
	if u.FU.IsFloat() {
		for i, p := range s.Pairs {
			fa := circuits.Float32FromBits(p.A)
			fb := circuits.Float32FromBits(p.B)
			if fa != fa || fb != fb {
				return fmt.Errorf("core: stream %q pair %d holds a NaN operand for float unit %v", s.Name, i, u.FU)
			}
		}
	}
	return nil
}

// CharacterizeContext is Characterize with cooperative cancellation: the
// simulation loop checks ctx every few hundred cycles, so a sweep
// runner's per-task deadline or a SIGINT aborts a multi-minute cell
// promptly instead of leaking it to completion in the background.
func CharacterizeContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, clocks []float64) (*Trace, error) {
	if err := validateCharacterizeInputs(u, s, clocks); err != nil {
		return nil, err
	}
	static, err := u.Static(corner)
	if err != nil {
		return nil, err
	}
	r, err := u.NewRunner(corner)
	if err != nil {
		return nil, err
	}
	n := s.Len() - 1
	tr := &Trace{
		FU:           u.FU,
		Corner:       corner,
		Stream:       s,
		Delays:       make([]float64, n),
		ClockPeriods: append([]float64(nil), clocks...),
		Errors:       make([][]bool, len(clocks)),
		StaticDelay:  static.Delay,
	}
	for k := range tr.Errors {
		tr.Errors[k] = make([]bool, n)
	}
	prev := make([]bool, circuits.OperandBits)
	cur := make([]bool, circuits.OperandBits)
	circuits.EncodeOperandsInto(s.Pairs[0].A, s.Pairs[0].B, prev)
	for i := 0; i < n; i++ {
		if i&255 == 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		circuits.EncodeOperandsInto(s.Pairs[i+1].A, s.Pairs[i+1].B, cur)
		var cy, err = r.Cycle(prev, cur)
		if err != nil {
			return nil, err
		}
		tr.Delays[i] = cy.Delay
		tr.Events += cy.Events
		if cy.Delay > tr.MaxDelay {
			tr.MaxDelay = cy.Delay
		}
		init := r.InitialOutputs()
		for k, tclk := range clocks {
			tr.Errors[k][i] = cy.ErrorAt(init, tclk)
		}
		prev = nil // streaming mode: the runner keeps its settled state
	}
	return tr, nil
}

// CharacterizeWithSpeedups is Characterize with the capture periods
// derived from the unit's error-free base clock at the corner:
// period_s = base / (1 + s) for each fractional speedup s.
func CharacterizeWithSpeedups(u *FUnit, corner cells.Corner, s *workload.Stream, speedups []float64) (*Trace, error) {
	return CharacterizeWithSpeedupsContext(context.Background(), u, corner, s, speedups)
}

// CharacterizeWithSpeedupsContext is CharacterizeWithSpeedups with
// cooperative cancellation (see CharacterizeContext).
func CharacterizeWithSpeedupsContext(ctx context.Context, u *FUnit, corner cells.Corner, s *workload.Stream, speedups []float64) (*Trace, error) {
	if u == nil {
		return nil, fmt.Errorf("core: CharacterizeWithSpeedups called with a nil functional unit")
	}
	clocks, err := u.ClockPeriods(corner, speedups)
	if err != nil {
		return nil, err
	}
	return CharacterizeContext(ctx, u, corner, s, clocks)
}
