// Package core implements TEVoT itself: the dynamic-timing-analysis
// orchestration (Fig. 2's first phase), feature extraction and model
// training (second phase), prediction and evaluation against the paper's
// three baselines (third phase), and the application-quality study.
package core

import (
	"fmt"
	"math"

	"tevot/internal/cells"
)

// Grid is the operating-condition sweep of the paper's Table I: a
// voltage range, a temperature range, and the clock speedups applied on
// top of each corner's error-free baseline clock.
type Grid struct {
	VStart, VEnd, VStep float64
	TStart, TEnd, TStep float64
	// Speedups are fractional clock-frequency increases over the
	// fastest error-free clock (e.g. 0.05 = 5 % faster clock).
	Speedups []float64
}

// TableIGrid returns the paper's exact grid: 20 voltage points from
// 0.81 V to 1.00 V in 0.01 V steps, 5 temperature points from 0 °C to
// 100 °C in 25 °C steps (100 corners), and speedups of 5 %, 10 %, 15 %.
func TableIGrid() Grid {
	return Grid{
		VStart: 0.81, VEnd: 1.00, VStep: 0.01,
		TStart: 0, TEnd: 100, TStep: 25,
		Speedups: []float64{0.05, 0.10, 0.15},
	}
}

// Corners enumerates the grid's (V, T) pairs, voltage-major.
func (g Grid) Corners() []cells.Corner {
	var corners []cells.Corner
	// Walk in integer steps to dodge floating-point drift.
	nv := int(math.Round((g.VEnd-g.VStart)/g.VStep)) + 1
	nt := int(math.Round((g.TEnd-g.TStart)/g.TStep)) + 1
	for vi := 0; vi < nv; vi++ {
		v := g.VStart + float64(vi)*g.VStep
		for ti := 0; ti < nt; ti++ {
			t := g.TStart + float64(ti)*g.TStep
			corners = append(corners, cells.Corner{V: round3(v), T: round3(t)})
		}
	}
	return corners
}

func round3(v float64) float64 { return math.Round(v*1000) / 1000 }

// Validate checks the grid is well-formed.
func (g Grid) Validate() error {
	if g.VStep <= 0 || g.TStep <= 0 {
		return fmt.Errorf("core: grid steps must be positive")
	}
	if g.VEnd < g.VStart || g.TEnd < g.TStart {
		return fmt.Errorf("core: grid ranges inverted")
	}
	for _, s := range g.Speedups {
		if s <= 0 || s >= 1 {
			return fmt.Errorf("core: speedup %v outside (0,1)", s)
		}
	}
	return nil
}

// Fig3Corners returns the 9-corner subset the paper plots in Fig. 3:
// V in {0.81, 0.90, 1.00} crossed with T in {0, 50, 100}.
func Fig3Corners() []cells.Corner {
	var corners []cells.Corner
	for _, v := range []float64{0.81, 0.90, 1.00} {
		for _, t := range []float64{0, 50, 100} {
			corners = append(corners, cells.Corner{V: v, T: t})
		}
	}
	return corners
}
