package core

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/workload"
)

// recordAppStream profiles one application over a small synthetic image
// set and returns its operand stream for the given (native) FU — the
// same recording path the experiment lab uses.
func recordAppStream(t *testing.T, app inject.App, fu circuits.FU, pairCap int) *workload.Stream {
	t.Helper()
	rec := inject.NewRecording(pairCap)
	for _, img := range imaging.SyntheticSet(2, 24, 24) {
		app.Run(img, rec)
	}
	s, err := rec.Stream(fu)
	if err != nil {
		t.Fatal(err)
	}
	s.Name = app.String()
	return s
}

// TestMemoHitRateImagingStreams pins the optimization's premise on the
// workloads it was built for: the Sobel and Gaussian operand streams
// repeat input transitions, so characterization with the transition
// memo on must clear a minimum hit rate — and produce bit-identical
// results to the memo-off run.
//
// Measured on this fixture (2× synthetic 24×24 images, 1500-pair cap):
// Sobel/INT_MUL 0.283, Sobel/INT_ADD 0.106, Gauss/FP_MUL 0.280,
// Gauss/FP_ADD 0.043. The rate grows with stream length as the repeat
// structure compounds across images — 0.44 at 20k cycles and ~0.60 at
// 60k cycles on the multipliers (8 images, larger caps) — so these
// small-fixture bounds are the floor, not the ceiling. The assertions
// sit below the measured values so image-set tweaks don't flake them;
// update both if the fixture changes.
func TestMemoHitRateImagingStreams(t *testing.T) {
	cases := []struct {
		app     inject.App
		fu      circuits.FU
		minRate float64
	}{
		{inject.SobelApp, circuits.IntMul32, 0.20},
		{inject.SobelApp, circuits.IntAdd32, 0.06},
		{inject.GaussApp, circuits.FPMul32, 0.20},
		{inject.GaussApp, circuits.FPAdd32, 0.02},
	}
	corner := cells.Corner{V: 0.90, T: 25}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.app.String()+"/"+tc.fu.String(), func(t *testing.T) {
			t.Parallel()
			s := recordAppStream(t, tc.app, tc.fu, 1500)
			u, err := NewFUnit(tc.fu)
			if err != nil {
				t.Fatal(err)
			}
			clocks := []float64{200, 400}
			on, err := CharacterizeOpts(u, corner, s, clocks, CharacterizeOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			off, err := CharacterizeOpts(u, corner, s, clocks, CharacterizeOptions{Workers: 1, MemoOff: true})
			if err != nil {
				t.Fatal(err)
			}

			// Bit-identical outputs, memo on vs off.
			if on.Events != off.Events || on.MaxDelay != off.MaxDelay {
				t.Fatalf("memo on/off diverge: events %d/%d, max %v/%v",
					on.Events, off.Events, on.MaxDelay, off.MaxDelay)
			}
			for i := range off.Delays {
				if on.Delays[i] != off.Delays[i] {
					t.Fatalf("cycle %d: delay %v with memo, %v without", i, on.Delays[i], off.Delays[i])
				}
			}
			for k := range off.Errors {
				for i := range off.Errors[k] {
					if on.Errors[k][i] != off.Errors[k][i] {
						t.Fatalf("clock %d cycle %d: error flag diverges", k, i)
					}
				}
			}

			// The premise: real streams repeat transitions.
			if hr := on.HitRate(); hr < tc.minRate {
				t.Fatalf("memo hit rate %.3f below %.2f on %s/%s (%d cycles, stats: %d hits, %d misses)",
					hr, tc.minRate, tc.app, tc.fu, on.Cycles(), on.MemoHits, on.MemoMisses)
			}
			if off.MemoHits != 0 || off.MemoMisses != 0 || off.HitRate() != 0 {
				t.Fatalf("memo-off trace carries memo stats: %+v", off)
			}
			t.Logf("%s/%s: %d cycles, hit rate %.3f, %d windows, pruned-gate fraction %.3f",
				tc.app, tc.fu, on.Cycles(), on.HitRate(), on.SliceWindows,
				func() float64 {
					if on.SliceWindows == 0 {
						return 0
					}
					return float64(on.SlicePrunedGateWindows) / (float64(on.SliceWindows) * float64(u.NL.NumGates()))
				}())
		})
	}
}
