// Package cells provides the standard-cell library used by the gate-level
// substrate: the set of primitive cell kinds, their logic functions, their
// nominal timing parameters, and the voltage/temperature delay-scaling
// model that stands in for the composite-current-source characterization
// the paper obtains from a commercial 45 nm library.
package cells

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Kind identifies a primitive cell in the library.
type Kind uint8

// The cell library. Arities are fixed per kind; MUX2 input order is
// (d0, d1, sel).
const (
	Buf Kind = iota
	Inv
	And2
	Or2
	Nand2
	Nor2
	Xor2
	Xnor2
	And3
	Or3
	Nand3
	Nor3
	Mux2
	numKinds
)

var kindNames = [...]string{
	Buf: "BUF", Inv: "INV",
	And2: "AND2", Or2: "OR2", Nand2: "NAND2", Nor2: "NOR2",
	Xor2: "XOR2", Xnor2: "XNOR2",
	And3: "AND3", Or3: "OR3", Nand3: "NAND3", Nor3: "NOR3",
	Mux2: "MUX2",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ParseKind maps a cell name as printed by String ("NAND2", ...) back to
// its Kind.
func ParseKind(s string) (Kind, error) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), nil
		}
	}
	return 0, fmt.Errorf("cells: unknown cell kind %q", s)
}

// Kinds returns all cell kinds in the library.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// NumInputs reports the arity of the cell kind.
func (k Kind) NumInputs() int {
	switch k {
	case Buf, Inv:
		return 1
	case And2, Or2, Nand2, Nor2, Xor2, Xnor2:
		return 2
	case And3, Or3, Nand3, Nor3, Mux2:
		return 3
	}
	panic("cells: unknown kind " + k.String())
}

// Eval computes the cell's output for the given input values. The length
// of in must equal NumInputs.
func (k Kind) Eval(in []bool) bool {
	switch k {
	case Buf:
		return in[0]
	case Inv:
		return !in[0]
	case And2:
		return in[0] && in[1]
	case Or2:
		return in[0] || in[1]
	case Nand2:
		return !(in[0] && in[1])
	case Nor2:
		return !(in[0] || in[1])
	case Xor2:
		return in[0] != in[1]
	case Xnor2:
		return in[0] == in[1]
	case And3:
		return in[0] && in[1] && in[2]
	case Or3:
		return in[0] || in[1] || in[2]
	case Nand3:
		return !(in[0] && in[1] && in[2])
	case Nor3:
		return !(in[0] || in[1] || in[2])
	case Mux2:
		if in[2] {
			return in[1]
		}
		return in[0]
	}
	panic("cells: unknown kind " + k.String())
}

// LUT returns the cell's truth table packed into a uint8: bit m holds
// the output for the input assignment where input pin j carries bit j
// of m. Masks with bits above the cell's arity set replicate the value
// of the mask with those bits cleared, so a lookup stays correct even
// if a caller's packed-input word carries stale high bits. A LUT lookup
// `k.LUT()>>m&1` is exactly equivalent to Eval and is what the
// simulator's flattened hot loop uses instead of switch dispatch.
func (k Kind) LUT() uint8 {
	arity := k.NumInputs()
	var in [3]bool
	var lut uint8
	for m := 0; m < 8; m++ {
		for j := 0; j < arity; j++ {
			in[j] = m>>j&1 == 1
		}
		if k.Eval(in[:arity]) {
			lut |= 1 << m
		}
	}
	return lut
}

// Timing holds the nominal-corner timing parameters of a cell kind, in
// picoseconds. Delay of an instance driving F fanout loads at the nominal
// corner is Intrinsic + F*PerLoad.
type Timing struct {
	Intrinsic float64 // ps, unloaded propagation delay
	PerLoad   float64 // ps per unit fanout load
}

// timings approximates relative cell delays of a 45 nm library: inverting
// single-stage cells are fastest, XOR-class cells (two stages of logic)
// slowest, three-input cells slower than two-input ones.
var timings = [...]Timing{
	Buf:   {28, 5.0},
	Inv:   {14, 4.0},
	And2:  {32, 5.5},
	Or2:   {33, 5.5},
	Nand2: {18, 4.5},
	Nor2:  {20, 4.8},
	Xor2:  {44, 6.5},
	Xnor2: {45, 6.5},
	And3:  {39, 6.0},
	Or3:   {41, 6.0},
	Nand3: {24, 5.2},
	Nor3:  {27, 5.5},
	Mux2:  {38, 6.0},
}

// NominalTiming returns the nominal-corner timing parameters for k.
func NominalTiming(k Kind) Timing { return timings[k] }

// Corner is an operating condition: supply voltage in volts and junction
// temperature in degrees Celsius.
type Corner struct {
	V float64 // volts
	T float64 // °C
}

func (c Corner) String() string { return fmt.Sprintf("(%.2fV,%g°C)", c.V, c.T) }

// ScalingModel parameterizes the alpha-power-law delay derating used to
// translate nominal cell delays to an arbitrary (V, T) corner:
//
//	d(V,T) = d_nom · mob(T) · ((Vnom−Vth(Tnom))/(V−Vth(T)))^α · (V/Vnom)
//	Vth(T) = Vth0 − Ktheta·(T − Tnom)
//	mob(T) = ((T+273.15)/(Tnom+273.15))^M
//
// The threshold-voltage term dominates at low supply voltage (delay falls
// as temperature rises) while the mobility term dominates near nominal
// voltage (delay rises with temperature): the inverse temperature
// dependence the paper observes.
type ScalingModel struct {
	Vnom   float64 // nominal supply voltage, volts
	Tnom   float64 // nominal temperature, °C
	Vth0   float64 // threshold voltage at Tnom, volts
	Ktheta float64 // threshold temperature coefficient, V/°C
	Alpha  float64 // velocity-saturation exponent
	M      float64 // mobility temperature exponent
}

// DefaultScaling returns the scaling model calibrated for the paper's
// operating window (0.81 V – 1.00 V, 0 °C – 100 °C): the temperature
// sensitivity of delay changes sign inside the window.
func DefaultScaling() ScalingModel {
	return ScalingModel{
		Vnom:   1.00,
		Tnom:   25,
		Vth0:   0.50,
		Ktheta: 0.0012,
		Alpha:  1.3,
		M:      1.35,
	}
}

// Validate reports whether the corner is inside the model's physical
// domain (supply must stay safely above threshold).
func (m ScalingModel) Validate(c Corner) error {
	if c.V <= m.Vth(c.T)+0.05 {
		return fmt.Errorf("cells: corner %v below valid supply range (Vth=%.3fV)", c, m.Vth(c.T))
	}
	if c.T < -55 || c.T > 150 {
		return fmt.Errorf("cells: corner %v outside temperature range [-55,150]", c)
	}
	return nil
}

// Vth returns the temperature-adjusted threshold voltage.
func (m ScalingModel) Vth(t float64) float64 {
	return m.Vth0 - m.Ktheta*(t-m.Tnom)
}

// Factor returns the multiplicative delay derating for corner c relative
// to the nominal corner, for a cell of average voltage sensitivity.
// Factor of the nominal corner is 1.
func (m ScalingModel) Factor(c Corner) float64 {
	return m.factorAlpha(c, m.Alpha)
}

// alphaAdjust models the composite-current-source observation that cell
// types derate differently with supply: transistor stacks (3-input
// gates, NOR pull-ups) lose drive faster at low voltage than single
// inverters. Because of this, path ranking — and therefore which path is
// critical and which cycles err — changes with the corner, which is
// exactly the cross-condition structure TEVoT's (V, T) features learn.
var alphaAdjust = [...]float64{
	Buf:   1.00,
	Inv:   0.94,
	And2:  1.02,
	Or2:   1.04,
	Nand2: 0.97,
	Nor2:  1.06,
	Xor2:  1.03,
	Xnor2: 1.05,
	And3:  1.08,
	Or3:   1.10,
	Nand3: 1.04,
	Nor3:  1.13,
	Mux2:  1.01,
}

// FactorFor is Factor with the cell kind's own voltage-sensitivity
// exponent. It equals 1 at the nominal corner for every kind.
func (m ScalingModel) FactorFor(k Kind, c Corner) float64 {
	return m.factorAlpha(c, m.Alpha*alphaAdjust[k])
}

func (m ScalingModel) factorAlpha(c Corner, alpha float64) float64 {
	mob := math.Pow((c.T+273.15)/(m.Tnom+273.15), m.M)
	drive := math.Pow((m.Vnom-m.Vth(m.Tnom))/(c.V-m.Vth(c.T)), alpha)
	return mob * drive * (c.V / m.Vnom)
}

// JitterFactor returns a deterministic per-instance delay multiplier in
// [1-spread, 1+spread], derived from the instance name. It models
// within-die cell mismatch so that identical cells on parallel paths do
// not switch in lockstep.
func JitterFactor(instance string, spread float64) float64 {
	h := fnv.New64a()
	h.Write([]byte(instance))
	// Map the hash to [-1, 1).
	u := int64(h.Sum64()>>11) % (1 << 20)
	f := float64(u)/float64(1<<19) - 1
	return 1 + spread*f
}
