package cells

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKindNumInputs(t *testing.T) {
	want := map[Kind]int{
		Buf: 1, Inv: 1,
		And2: 2, Or2: 2, Nand2: 2, Nor2: 2, Xor2: 2, Xnor2: 2,
		And3: 3, Or3: 3, Nand3: 3, Nor3: 3, Mux2: 3,
	}
	if len(want) != int(numKinds) {
		t.Fatalf("test covers %d kinds, library has %d", len(want), numKinds)
	}
	for k, n := range want {
		if got := k.NumInputs(); got != n {
			t.Errorf("%s.NumInputs() = %d, want %d", k, got, n)
		}
	}
}

// TestEvalTruthTables exhaustively checks every cell against a reference
// boolean expression over all input combinations.
func TestEvalTruthTables(t *testing.T) {
	refs := map[Kind]func(in []bool) bool{
		Buf:   func(in []bool) bool { return in[0] },
		Inv:   func(in []bool) bool { return !in[0] },
		And2:  func(in []bool) bool { return in[0] && in[1] },
		Or2:   func(in []bool) bool { return in[0] || in[1] },
		Nand2: func(in []bool) bool { return !(in[0] && in[1]) },
		Nor2:  func(in []bool) bool { return !(in[0] || in[1]) },
		Xor2:  func(in []bool) bool { return in[0] != in[1] },
		Xnor2: func(in []bool) bool { return in[0] == in[1] },
		And3:  func(in []bool) bool { return in[0] && in[1] && in[2] },
		Or3:   func(in []bool) bool { return in[0] || in[1] || in[2] },
		Nand3: func(in []bool) bool { return !(in[0] && in[1] && in[2]) },
		Nor3:  func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
		Mux2: func(in []bool) bool {
			if in[2] {
				return in[1]
			}
			return in[0]
		},
	}
	for k, ref := range refs {
		n := k.NumInputs()
		for bits := 0; bits < 1<<n; bits++ {
			in := make([]bool, n)
			for i := range in {
				in[i] = bits>>i&1 == 1
			}
			if got, want := k.Eval(in), ref(in); got != want {
				t.Errorf("%s.Eval(%v) = %v, want %v", k, in, got, want)
			}
		}
	}
}

// TestLUTMatchesEval: the packed truth table agrees with Eval on every
// input assignment, including masks whose bits above the cell's arity
// are set (the replicated region).
func TestLUTMatchesEval(t *testing.T) {
	for _, k := range Kinds() {
		lut := k.LUT()
		arity := k.NumInputs()
		in := make([]bool, arity)
		for m := 0; m < 8; m++ {
			for j := 0; j < arity; j++ {
				in[j] = m>>j&1 == 1
			}
			if got, want := lut>>m&1 == 1, k.Eval(in); got != want {
				t.Errorf("%s.LUT() bit %d = %v, Eval(%v) = %v", k, m, got, in, want)
			}
		}
	}
}

func TestNominalTimingPositive(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		tm := NominalTiming(k)
		if tm.Intrinsic <= 0 || tm.PerLoad <= 0 {
			t.Errorf("%s has non-positive timing %+v", k, tm)
		}
	}
	if inv, xor := NominalTiming(Inv), NominalTiming(Xor2); inv.Intrinsic >= xor.Intrinsic {
		t.Errorf("INV (%v) should be faster than XOR2 (%v)", inv.Intrinsic, xor.Intrinsic)
	}
}

func TestScalingNominalIsUnity(t *testing.T) {
	m := DefaultScaling()
	f := m.Factor(Corner{V: m.Vnom, T: m.Tnom})
	if math.Abs(f-1) > 1e-12 {
		t.Fatalf("Factor(nominal) = %v, want 1", f)
	}
}

func TestScalingMonotoneInVoltage(t *testing.T) {
	m := DefaultScaling()
	for _, temp := range []float64{0, 25, 50, 75, 100} {
		prev := math.Inf(1)
		for v := 0.81; v <= 1.001; v += 0.01 {
			f := m.Factor(Corner{V: v, T: temp})
			if f >= prev {
				t.Fatalf("Factor not strictly decreasing in V at T=%g: f(%.2f)=%.5f >= %.5f", temp, v, f, prev)
			}
			prev = f
		}
	}
}

// TestInverseTemperatureDependence pins the paper's Fig. 3 physics: at the
// lowest supply, heating the die speeds it up; at nominal supply, heating
// slows it down.
func TestInverseTemperatureDependence(t *testing.T) {
	m := DefaultScaling()
	lowCold := m.Factor(Corner{V: 0.81, T: 0})
	lowHot := m.Factor(Corner{V: 0.81, T: 100})
	if lowHot >= lowCold {
		t.Errorf("at 0.81V delay should drop with temperature: f(0°)=%.5f f(100°)=%.5f", lowCold, lowHot)
	}
	hiCold := m.Factor(Corner{V: 1.00, T: 0})
	hiHot := m.Factor(Corner{V: 1.00, T: 100})
	if hiHot <= hiCold {
		t.Errorf("at 1.00V delay should rise with temperature: f(0°)=%.5f f(100°)=%.5f", hiCold, hiHot)
	}
}

func TestScalingLowVoltageSlower(t *testing.T) {
	m := DefaultScaling()
	f := m.Factor(Corner{V: 0.81, T: 25})
	if f < 1.2 {
		t.Errorf("0.81V derating = %.3f; expected a substantial slowdown (>1.2x)", f)
	}
	if f > 3.5 {
		t.Errorf("0.81V derating = %.3f; implausibly large", f)
	}
}

func TestValidateCorner(t *testing.T) {
	m := DefaultScaling()
	if err := m.Validate(Corner{V: 0.81, T: 0}); err != nil {
		t.Errorf("valid corner rejected: %v", err)
	}
	if err := m.Validate(Corner{V: 0.50, T: 25}); err == nil {
		t.Error("near-threshold corner accepted; want error")
	}
	if err := m.Validate(Corner{V: 1.0, T: 200}); err == nil {
		t.Error("200°C corner accepted; want error")
	}
}

func TestJitterFactorDeterministicAndBounded(t *testing.T) {
	const spread = 0.02
	a1 := JitterFactor("u1_XOR2", spread)
	a2 := JitterFactor("u1_XOR2", spread)
	if a1 != a2 {
		t.Fatalf("JitterFactor not deterministic: %v != %v", a1, a2)
	}
	if b := JitterFactor("u2_XOR2", spread); b == a1 {
		t.Logf("note: distinct instances produced equal jitter (hash collision is possible but unlikely)")
	}
	f := func(name string) bool {
		j := JitterFactor(name, spread)
		return j >= 1-spread && j <= 1+spread
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJitterSpreadZero(t *testing.T) {
	if j := JitterFactor("anything", 0); j != 1 {
		t.Fatalf("JitterFactor with zero spread = %v, want 1", j)
	}
}

// TestFactorForNominalUnity: per-kind derating is exactly 1 at the
// nominal corner for every cell kind.
func TestFactorForNominalUnity(t *testing.T) {
	m := DefaultScaling()
	nom := Corner{V: m.Vnom, T: m.Tnom}
	for k := Kind(0); k < numKinds; k++ {
		if f := m.FactorFor(k, nom); math.Abs(f-1) > 1e-12 {
			t.Errorf("%s: FactorFor(nominal) = %v, want 1", k, f)
		}
	}
}

// TestStackedCellsDerateMore: at low voltage, transistor stacks (NOR3)
// slow down more than inverters — the cell-type dependence that makes
// path ranking corner-sensitive.
func TestStackedCellsDerateMore(t *testing.T) {
	m := DefaultScaling()
	low := Corner{V: 0.81, T: 25}
	if inv, nor3 := m.FactorFor(Inv, low), m.FactorFor(Nor3, low); nor3 <= inv {
		t.Errorf("NOR3 derating (%v) should exceed INV (%v) at 0.81V", nor3, inv)
	}
}

// TestFactorPropertyPositive checks the derating is positive and finite
// across the whole Table I operating window.
func TestFactorPropertyPositive(t *testing.T) {
	m := DefaultScaling()
	f := func(vi, ti uint8) bool {
		v := 0.81 + float64(vi%20)*0.01
		temp := float64(ti%5) * 25
		fac := m.Factor(Corner{V: v, T: temp})
		return fac > 0 && !math.IsInf(fac, 0) && !math.IsNaN(fac)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
