package cells

import (
	"fmt"
	"hash/fnv"
	"math"
)

// The paper's §III notes that "the same principle can be used to
// incorporate process and aging variations" and §VI names them as future
// work. This file implements both as threshold-voltage shifts feeding
// the same alpha-power delay model: a per-die plus per-instance ΔVth for
// process variation, and a stress-time-dependent ΔVth for BTI aging.

// ProcessModel describes process-induced threshold variation: a
// die-to-die component shared by every cell on a die and a within-die
// random component per instance. All draws are deterministic functions
// of (DieSeed, instance name).
type ProcessModel struct {
	// DieSigma is the die-to-die Vth standard deviation, volts
	// (e.g. 0.015 for 15 mV).
	DieSigma float64
	// WithinSigma is the within-die per-instance Vth standard
	// deviation, volts.
	WithinSigma float64
	// DieSeed identifies the die; different seeds are different chips.
	DieSeed int64
}

// DefaultProcess returns a moderate 45 nm-flavored corner: ±15 mV
// die-to-die, ±8 mV within-die.
func DefaultProcess(dieSeed int64) ProcessModel {
	return ProcessModel{DieSigma: 0.015, WithinSigma: 0.008, DieSeed: dieSeed}
}

// Validate rejects negative spreads.
func (p ProcessModel) Validate() error {
	if p.DieSigma < 0 || p.WithinSigma < 0 {
		return fmt.Errorf("cells: negative process sigma %+v", p)
	}
	return nil
}

// DieShift returns the die's shared Vth offset, volts.
func (p ProcessModel) DieShift() float64 {
	return p.DieSigma * gaussFromHash(uint64(p.DieSeed)*0x9e3779b97f4a7c15+1)
}

// VthShift returns the total (die + within-die) Vth offset of one cell
// instance, volts.
func (p ProcessModel) VthShift(instance string) float64 {
	h := fnv.New64a()
	h.Write([]byte(instance))
	local := p.WithinSigma * gaussFromHash(h.Sum64()^uint64(p.DieSeed))
	return p.DieShift() + local
}

// gaussFromHash turns a hash into an approximately standard-normal
// variate via the sum of uniforms (Irwin–Hall with 12 terms), fully
// deterministic.
func gaussFromHash(h uint64) float64 {
	s := 0.0
	x := h
	for i := 0; i < 12; i++ {
		x ^= x >> 12
		x *= 0x2545f4914f6cdd1d
		x ^= x << 25
		x ^= x >> 27
		s += float64(x>>11) / float64(1<<53)
	}
	return s - 6
}

// AgingModel describes BTI-style wearout: threshold voltage rises with
// stress time as ΔVth = A·t^N (t in years), slowing the circuit — the
// classic power-law used in guardbanding studies.
type AgingModel struct {
	// A is the ΔVth after one year of stress, volts (e.g. 0.02).
	A float64
	// N is the time exponent (typically 0.1–0.25).
	N float64
	// Years is the accumulated stress time.
	Years float64
}

// DefaultAging returns a 3-year moderate-wearout profile (~25 mV).
func DefaultAging(years float64) AgingModel {
	return AgingModel{A: 0.02, N: 0.2, Years: years}
}

// Validate rejects unphysical parameters.
func (a AgingModel) Validate() error {
	if a.A < 0 || a.N <= 0 || a.Years < 0 {
		return fmt.Errorf("cells: invalid aging model %+v", a)
	}
	return nil
}

// VthShift returns the aging-induced Vth increase, volts.
func (a AgingModel) VthShift() float64 {
	if a.Years == 0 {
		return 0
	}
	return a.A * math.Pow(a.Years, a.N)
}

// FactorShifted is FactorFor with an additional threshold-voltage shift
// (process and/or aging), in volts. A positive shift raises Vth and
// therefore the delay. It equals FactorFor when the shift is zero.
func (m ScalingModel) FactorShifted(k Kind, c Corner, dVth float64) float64 {
	alpha := m.Alpha * alphaAdjust[k]
	mob := math.Pow((c.T+273.15)/(m.Tnom+273.15), m.M)
	denom := c.V - (m.Vth(c.T) + dVth)
	if denom <= 0.01 {
		denom = 0.01 // clamp: a near-threshold cell is ~stalled, not negative
	}
	drive := math.Pow((m.Vnom-m.Vth(m.Tnom))/denom, alpha)
	return mob * drive * (c.V / m.Vnom)
}
