package cells

import (
	"math"
	"testing"
)

func TestAgingShiftGrowsWithTime(t *testing.T) {
	fresh := DefaultAging(0)
	if fresh.VthShift() != 0 {
		t.Errorf("fresh silicon has shift %v", fresh.VthShift())
	}
	prev := 0.0
	for _, years := range []float64{0.5, 1, 3, 10} {
		s := DefaultAging(years).VthShift()
		if s <= prev {
			t.Fatalf("aging shift not increasing: %v at %v years", s, years)
		}
		prev = s
	}
	if y3 := DefaultAging(3).VthShift(); y3 < 0.015 || y3 > 0.05 {
		t.Errorf("3-year shift %v outside plausible 15–50 mV", y3)
	}
}

func TestAgingValidate(t *testing.T) {
	if err := (AgingModel{A: -1, N: 0.2}).Validate(); err == nil {
		t.Error("accepted negative A")
	}
	if err := (AgingModel{A: 0.02, N: 0, Years: 1}).Validate(); err == nil {
		t.Error("accepted zero exponent")
	}
}

func TestFactorShiftedMatchesUnshifted(t *testing.T) {
	m := DefaultScaling()
	c := Corner{V: 0.85, T: 50}
	for k := Kind(0); k < numKinds; k++ {
		a := m.FactorFor(k, c)
		b := m.FactorShifted(k, c, 0)
		if math.Abs(a-b) > 1e-12 {
			t.Fatalf("%s: FactorShifted(0) = %v, FactorFor = %v", k, b, a)
		}
	}
}

func TestFactorShiftedSlowsWithPositiveShift(t *testing.T) {
	m := DefaultScaling()
	c := Corner{V: 0.85, T: 50}
	base := m.FactorShifted(Nand2, c, 0)
	aged := m.FactorShifted(Nand2, c, 0.03)
	if aged <= base {
		t.Errorf("30 mV Vth shift should slow the cell: %v vs %v", aged, base)
	}
	// A fast-corner (negative) shift speeds it up.
	fast := m.FactorShifted(Nand2, c, -0.02)
	if fast >= base {
		t.Errorf("negative shift should speed the cell: %v vs %v", fast, base)
	}
}

func TestProcessDeterministicPerDie(t *testing.T) {
	p := DefaultProcess(7)
	a := p.VthShift("u1_NAND2")
	b := p.VthShift("u1_NAND2")
	if a != b {
		t.Fatal("process shift not deterministic")
	}
	other := DefaultProcess(8)
	if other.VthShift("u1_NAND2") == a {
		t.Error("different dies produced identical shifts (unlikely)")
	}
}

func TestProcessDieShiftShared(t *testing.T) {
	p := ProcessModel{DieSigma: 0.02, WithinSigma: 0, DieSeed: 3}
	a := p.VthShift("u1_INV")
	b := p.VthShift("u999_XOR2")
	if a != b {
		t.Errorf("with zero within-die sigma all instances should share the die shift: %v vs %v", a, b)
	}
}

func TestProcessWithinDieSpread(t *testing.T) {
	p := ProcessModel{DieSigma: 0, WithinSigma: 0.01, DieSeed: 1}
	var sum, sq float64
	const n = 2000
	for i := 0; i < n; i++ {
		s := p.VthShift(instName(i))
		sum += s
		sq += s * s
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Errorf("within-die mean shift %v; want near 0", mean)
	}
	if std < 0.007 || std > 0.013 {
		t.Errorf("within-die std %v; want ~0.01", std)
	}
}

func instName(i int) string {
	return "u" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func TestProcessValidate(t *testing.T) {
	if err := (ProcessModel{DieSigma: -1}).Validate(); err == nil {
		t.Error("accepted negative sigma")
	}
}

func TestGaussFromHashMoments(t *testing.T) {
	var sum, sq float64
	const n = 5000
	for i := uint64(0); i < n; i++ {
		g := gaussFromHash(i*0x9e3779b97f4a7c15 + 12345)
		sum += g
		sq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean) > 0.05 {
		t.Errorf("hash-gaussian mean %v, want ~0", mean)
	}
	if std < 0.9 || std > 1.1 {
		t.Errorf("hash-gaussian std %v, want ~1", std)
	}
}
