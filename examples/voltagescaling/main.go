// Voltage-scaling guardband study: the motivating use case of the
// paper's introduction. For each supply voltage we compare three clock
// policies on the FP multiplier:
//
//   - the STA guardband (clock at the static critical path — what a
//     conservative sign-off would require),
//   - the measured error-free clock (max dynamic delay of the actual
//     workload), and
//   - an aggressive 10 % overclock beyond that, with TEVoT predicting
//     which cycles err so the system could scale back adaptively.
//
// The gap between the first two columns is the guardband the paper says
// conservative design wastes; the third column shows how well TEVoT
// tracks the resulting errors.
package main

import (
	"fmt"
	"log"

	"tevot"
)

func main() {
	log.SetFlags(0)

	fu, err := tevot.NewFunctionalUnit(tevot.FPMul32)
	if err != nil {
		log.Fatal(err)
	}
	train := tevot.RandomWorkload(tevot.FPMul32, 1200, 1)
	test := tevot.RandomWorkload(tevot.FPMul32, 500, 2)

	fmt.Println("V      STA clock  measured clock  guardband  TER@+10%  TEVoT acc")
	for _, v := range []float64{0.81, 0.85, 0.90, 0.95, 1.00} {
		corner := tevot.Corner{V: v, T: 50}
		static, err := fu.Static(corner)
		if err != nil {
			log.Fatal(err)
		}
		base, err := fu.CalibrateBaseClock(corner, train)
		if err != nil {
			log.Fatal(err)
		}
		trTrain, err := tevot.CharacterizeWithSpeedups(fu, corner, train, []float64{0.10})
		if err != nil {
			log.Fatal(err)
		}
		model, err := tevot.Train(tevot.FPMul32, []*tevot.Trace{trTrain}, tevot.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		trTest, err := tevot.CharacterizeWithSpeedups(fu, corner, test, []float64{0.10})
		if err != nil {
			log.Fatal(err)
		}
		ev, err := tevot.Evaluate(model, trTest, 0)
		if err != nil {
			log.Fatal(err)
		}
		guardband := (static.Delay - base) / static.Delay
		fmt.Printf("%.2f  %8.0f ps   %10.0f ps   %7.1f%%  %7.2f%%   %7.2f%%\n",
			v, static.Delay, base, guardband*100, ev.TERTrue*100, ev.Accuracy*100)
	}
}
