// Quality-energy tradeoff exploration: the approximate-computing
// scenario the paper's introduction motivates. The Gaussian filter's
// floating-point units run at a FIXED clock (rated at nominal voltage)
// while the supply is scaled down. Each step saves CV² energy but
// eventually violates timing; TEVoT predicts the per-FU timing-error
// rates from the filter's own operand stream, errors are injected, and
// the output PSNR shows where quality collapses — the knee a
// quality-aware DVFS controller would sit on.
package main

import (
	"fmt"
	"log"

	"tevot"
	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/imaging"
	"tevot/internal/inject"
	"tevot/internal/power"
)

func main() {
	log.SetFlags(0)

	img := imaging.Synthetic(2, 40, 40)
	pm := power.Default()
	app := inject.GaussApp

	// Profile the filter's FP operand streams once.
	rec := inject.NewRecording(2000)
	app.Run(img, rec)

	// Rate each FU's clock at nominal voltage and train TEVoT across the
	// voltage range so one model covers the whole sweep.
	nominal := tevot.Corner{V: 1.00, T: 25}
	sweep := []tevot.Corner{
		{V: 1.00, T: 25}, {V: 0.96, T: 25}, {V: 0.92, T: 25},
		{V: 0.88, T: 25}, {V: 0.84, T: 25}, {V: 0.81, T: 25},
	}

	type fuState struct {
		unit   *core.FUnit
		model  *tevot.Model
		clock  float64 // ps, fixed across the sweep
		stream *tevot.Stream
	}
	states := map[circuits.FU]*fuState{}
	for _, fuKind := range app.FUs() {
		u, err := tevot.NewFunctionalUnit(fuKind)
		if err != nil {
			log.Fatal(err)
		}
		train := tevot.RandomWorkload(fuKind, 900, int64(fuKind)+3)
		base, err := u.CalibrateBaseClock(nominal, train)
		if err != nil {
			log.Fatal(err)
		}
		var traces []*tevot.Trace
		for _, c := range sweep {
			tr, err := tevot.Characterize(u, c, train, []float64{base})
			if err != nil {
				log.Fatal(err)
			}
			traces = append(traces, tr)
		}
		model, err := tevot.Train(fuKind, traces, tevot.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		stream, err := rec.Stream(fuKind)
		if err != nil {
			log.Fatal(err)
		}
		states[fuKind] = &fuState{unit: u, model: model, clock: base, stream: stream}
		fmt.Printf("%v rated at %.0f ps (%.2f GHz equivalent)\n", fuKind, base, 1000/base)
	}

	fmt.Println("\nV      energy/op   predicted TER (FP_ADD/FP_MUL)   PSNR     verdict")
	for _, corner := range sweep {
		ters := inject.TERs{}
		var energy float64
		for fuKind, st := range states {
			ter, err := st.model.TER(corner, st.stream, st.clock)
			if err != nil {
				log.Fatal(err)
			}
			ters[fuKind] = ter
			// Energy: characterize a short window for switching activity.
			probe, err := tevot.Characterize(st.unit, corner, st.stream.Slice(0, min(200, st.stream.Len())), nil)
			if err != nil {
				log.Fatal(err)
			}
			perOp, err := pm.PerOpFJ(probe.Events, probe.Cycles(), st.clock, cells.Corner(corner))
			if err != nil {
				log.Fatal(err)
			}
			energy += perOp
		}
		psnr, _, err := app.QualityRun(img, ters, 99)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "acceptable"
		if psnr < imaging.AcceptableThresholdDB {
			verdict = "UNACCEPTABLE"
		}
		fmt.Printf("%.2f  %7.1f fJ   %6.2f%% / %6.2f%%              %6.1f dB  %s\n",
			corner.V, energy,
			100*ters[circuits.FPAdd32], 100*ters[circuits.FPMul32], psnr, verdict)
	}
	fmt.Println("\n(the knee where energy savings meet the 30 dB floor is the operating")
	fmt.Println("point a TEVoT-guided controller would select)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
