// Image-quality exploration: the approximate-computing use case of the
// paper's §V.D. A Sobel filter runs on hardware whose integer FUs are
// overclocked 10 % beyond their error-free clock at a low-voltage
// corner. TEVoT predicts each FU's timing-error rate from the filter's
// own operand stream; errors are injected at those rates; the output
// PSNR tells a quality-aware runtime whether this operating point is
// acceptable (>= 30 dB) without ever running gate-level simulation.
//
// Pass an output directory to keep the degraded PNGs:
//
//	go run ./examples/imagequality out/
package main

import (
	"fmt"
	"image"
	"image/png"
	"log"
	"os"
	"path/filepath"

	"tevot"
	"tevot/internal/imaging"
	"tevot/internal/inject"
)

func main() {
	log.SetFlags(0)

	corner := tevot.Corner{V: 0.82, T: 25}
	const speedup = 0.10
	img := imaging.Synthetic(1, 48, 48)

	// Profile the Sobel filter's actual operand streams.
	rec := inject.NewRecording(2500)
	clean := inject.SobelApp.Run(img, rec)

	ters := inject.TERs{}
	for _, fuKind := range inject.SobelApp.FUs() {
		u, err := tevot.NewFunctionalUnit(fuKind)
		if err != nil {
			log.Fatal(err)
		}
		stream, err := rec.Stream(fuKind)
		if err != nil {
			log.Fatal(err)
		}
		// Rate the unit on random data, then model it.
		train := tevot.RandomWorkload(fuKind, 1200, 7)
		if _, err := u.CalibrateBaseClock(corner, train); err != nil {
			log.Fatal(err)
		}
		trTrain, err := tevot.CharacterizeWithSpeedups(u, corner, train, []float64{speedup})
		if err != nil {
			log.Fatal(err)
		}
		model, err := tevot.Train(fuKind, []*tevot.Trace{trTrain}, tevot.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		base, err := u.BaseClock(corner)
		if err != nil {
			log.Fatal(err)
		}
		tclk := base / (1 + speedup)
		ter, err := model.TER(corner, stream, tclk)
		if err != nil {
			log.Fatal(err)
		}
		ters[fuKind] = ter
		fmt.Printf("%v: base clock %.0f ps, +10%% clock %.0f ps, predicted TER %.3f%%\n",
			fuKind, base, tclk, ter*100)
	}

	psnr, degraded, err := inject.SobelApp.QualityRun(img, ters, 42)
	if err != nil {
		log.Fatal(err)
	}
	verdict := "ACCEPTABLE"
	if psnr < imaging.AcceptableThresholdDB {
		verdict = "UNACCEPTABLE"
	}
	fmt.Printf("\nSobel at %v, +10%% overclock: PSNR %.1f dB -> %s\n", corner, psnr, verdict)

	if len(os.Args) > 1 {
		dir := os.Args[1]
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		for name, m := range map[string]*imaging.Image{
			"input.png":    img,
			"clean.png":    clean,
			"degraded.png": degraded,
		} {
			if err := writePNG(filepath.Join(dir, name), m); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("wrote input/clean/degraded PNGs to %s\n", dir)
	}
}

func writePNG(path string, m *imaging.Image) error {
	img := image.NewGray(image.Rect(0, 0, m.W, m.H))
	copy(img.Pix, m.Pix)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(f, img); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
