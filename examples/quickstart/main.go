// Quickstart: the whole TEVoT flow on one functional unit in ~30 lines
// of API calls — build the gate-level unit, characterize its dynamic
// delay at an operating corner, train the random-forest model, and
// predict timing errors at an overclocked capture period.
package main

import (
	"fmt"
	"log"

	"tevot"
)

func main() {
	log.SetFlags(0)

	// 1. Build the 32-bit integer adder as a gate-level netlist.
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %v: %d gates\n", fu.FU, fu.NL.NumGates())

	// 2. Pick an operating corner: a droopy supply on a cool die.
	corner := tevot.Corner{V: 0.85, T: 25}

	// 3. Characterize: random workload, measured error-free base clock.
	train := tevot.RandomWorkload(tevot.IntAdd32, 3000, 1)
	base, err := fu.CalibrateBaseClock(corner, train)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error-free base clock at %v: %.1f ps\n", corner, base)

	speedups := []float64{0.05, 0.10, 0.15}
	trace, err := tevot.CharacterizeWithSpeedups(fu, corner, train, speedups)
	if err != nil {
		log.Fatal(err)
	}
	for k, sp := range speedups {
		fmt.Printf("  %2.0f%% overclock -> measured TER %.3f%%\n", sp*100, trace.TER(k)*100)
	}

	// 4. Train TEVoT (random forest on {V, T, x[t], x[t-1]} -> delay).
	model, err := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 5. Predict on unseen workload and score against gate-level
	// simulation ground truth.
	test := tevot.RandomWorkload(tevot.IntAdd32, 1000, 2)
	testTrace, err := tevot.CharacterizeWithSpeedups(fu, corner, test, speedups)
	if err != nil {
		log.Fatal(err)
	}
	for k := range speedups {
		ev, err := tevot.Evaluate(model, testTrace, k)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("TEVoT @ %.1f ps clock: accuracy %.2f%% (true TER %.3f%%, predicted %.3f%%)\n",
			ev.Clock, ev.Accuracy*100, ev.TERTrue*100, ev.TERPred*100)
	}

	// 6. The same model answers point queries, reusable across clocks.
	cur := tevot.OperandPair{A: 0xFFFFFFFF, B: 1} // full carry ripple
	prev := tevot.OperandPair{A: 0xFFFFFFFF, B: 0}
	d := model.PredictDelay(corner, cur, prev)
	fmt.Printf("predicted dynamic delay of 0xFFFFFFFF+1 after settle: %.1f ps\n", d)
}
