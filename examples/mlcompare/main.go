// ML method comparison on one functional unit: the experiment behind
// the paper's Table II and its "we choose RF" design decision. Trains
// linear regression, k-NN, a linear SVM, and the random forest on the
// same dynamic-timing data for the FP adder and prints accuracy and
// train/test times.
package main

import (
	"fmt"
	"log"

	"tevot/internal/circuits"
	"tevot/internal/experiments"
)

func main() {
	log.SetFlags(0)

	scale := experiments.Small()
	// The RBF-kernel SVM's O(n²) training is the point of the comparison
	// but also the budget: 2500 cycles keeps this example under a minute.
	scale.TrainCycles = 2500
	scale.TestCycles = 1000
	scale.FUs = []circuits.FU{circuits.FPAdd32}

	lab, err := experiments.NewLab(scale)
	if err != nil {
		log.Fatal(err)
	}
	results, err := experiments.Table2(lab)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("method  accuracy  train-time    test-time")
	var best string
	var bestAcc float64
	for _, r := range results {
		fmt.Printf("%-6s %8.2f%% %12v %12v\n", r.Method, 100*r.Accuracy, r.TrainTime, r.TestTime)
		if r.Accuracy > bestAcc {
			best, bestAcc = r.Method, r.Accuracy
		}
	}
	fmt.Printf("\nbest method: %s — the paper reaches the same conclusion (RFC)\n", best)
	fmt.Println("note the k-NN testing-time blowup: every query scans the training set,")
	fmt.Println("which is why the paper rules it out for online use despite trivial training.")
}
