// Package tevot is the public API of the TEVoT reproduction: supervised
// timing-error models for functional units under dynamic voltage and
// temperature variations (Jiao, Ma, Chang, Jiang — DAC 2020).
//
// The package re-exports the stable surface of the internal packages so
// a downstream user can run the whole flow — build a gate-level
// functional unit, characterize its dynamic delay at an operating
// corner, train the random-forest delay model, and predict timing
// errors at arbitrary clock speeds — without reaching into internal/.
//
// Quickstart:
//
//	fu, _ := tevot.NewFunctionalUnit(tevot.IntAdd32)
//	corner := tevot.Corner{V: 0.85, T: 50}
//	train := tevot.RandomWorkload(tevot.IntAdd32, 20000, 1)
//	base, _ := fu.CalibrateBaseClock(corner, train)
//	trace, _ := tevot.Characterize(fu, corner, train, nil)
//	model, _ := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
//	errs, _ := model.PredictErrors(corner, test, base/1.10) // 10 % overclock
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package tevot

import (
	"io"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/workload"
)

// Functional units (the paper's four modeling targets).
const (
	// IntAdd32 is the 32-bit ripple-carry integer adder.
	IntAdd32 = circuits.IntAdd32
	// IntMul32 is the 32-bit truncated array integer multiplier.
	IntMul32 = circuits.IntMul32
	// FPAdd32 is the IEEE-754 single-precision adder.
	FPAdd32 = circuits.FPAdd32
	// FPMul32 is the IEEE-754 single-precision multiplier.
	FPMul32 = circuits.FPMul32
)

// FU identifies a functional unit.
type FU = circuits.FU

// AllFUs lists the four functional units in reporting order.
var AllFUs = circuits.AllFUs

// Corner is an operating condition: supply voltage (V) and junction
// temperature (°C).
type Corner = cells.Corner

// Grid is an operating-condition sweep; TableIGrid is the paper's.
type Grid = core.Grid

// TableIGrid returns the paper's Table I sweep: 100 (V, T) corners and
// three clock speedups.
func TableIGrid() Grid { return core.TableIGrid() }

// FUnit is a built functional unit: gate-level netlist plus cached
// per-corner timing.
type FUnit = core.FUnit

// NewFunctionalUnit generates the unit's gate-level netlist and prepares
// it for timing analysis.
func NewFunctionalUnit(fu FU) (*FUnit, error) { return core.NewFUnit(fu) }

// Stream is an operand sequence driving a functional unit.
type Stream = workload.Stream

// OperandPair is one cycle's two 32-bit operands.
type OperandPair = workload.OperandPair

// RandomWorkload generates n+1 operand pairs (n simulated cycles) with
// the homogeneous 2-D distribution the paper trains on; float units get
// value-uniform float32 operands.
func RandomWorkload(fu FU, n int, seed int64) *Stream {
	return workload.Random(fu.IsFloat(), n+1, seed)
}

// Trace is a dynamic-timing-analysis result: per-cycle dynamic delays
// and ground-truth timing errors.
type Trace = core.Trace

// Characterize runs back-annotated gate-level simulation of the unit
// over the stream at a corner — the paper's DTA phase. clocks lists
// capture periods (ps) for ground-truth error labels; nil for
// delays only.
func Characterize(u *FUnit, corner Corner, s *Stream, clocks []float64) (*Trace, error) {
	return core.Characterize(u, corner, s, clocks)
}

// CharacterizeWithSpeedups derives the capture periods from the unit's
// error-free base clock: period = base / (1 + speedup).
func CharacterizeWithSpeedups(u *FUnit, corner Corner, s *Stream, speedups []float64) (*Trace, error) {
	return core.CharacterizeWithSpeedups(u, corner, s, speedups)
}

// Config controls model training; DefaultConfig is the paper's setup
// (random forest, 10 trees, all features, with computation history).
type Config = core.Config

// DefaultConfig returns the paper's training configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// Model is a trained TEVoT delay/error predictor.
type Model = core.Model

// Train fits a TEVoT model from characterization traces.
func Train(fu FU, traces []*Trace, cfg Config) (*Model, error) {
	return core.Train(fu, traces, cfg)
}

// LoadModel reads a model previously serialized with Model.Save, so
// pre-trained models can be shipped and reused without access to the
// characterization data.
func LoadModel(r io.Reader) (*Model, error) { return core.LoadModel(r) }

// ErrorPredictor is the interface shared by TEVoT and the baselines.
type ErrorPredictor = core.ErrorPredictor

// NewDelayBased builds the paper's Delay-based baseline from offline
// traces.
func NewDelayBased(fu FU, offline []*Trace) (ErrorPredictor, error) {
	return core.NewDelayBased(fu, offline)
}

// NewTERBased builds the paper's TER-based baseline from offline traces.
func NewTERBased(fu FU, offline []*Trace, seed int64) (ErrorPredictor, error) {
	return core.NewTERBased(fu, offline, seed)
}

// Evaluation scores a predictor against simulation ground truth.
type Evaluation = core.Evaluation

// Evaluate scores a predictor on a trace at clock index k (the paper's
// Eq. 4 prediction accuracy).
func Evaluate(p ErrorPredictor, tr *Trace, k int) (Evaluation, error) {
	return core.EvaluateAt(p, tr, k)
}

// EvaluateAll scores a predictor across every clock of every trace and
// returns the per-point evaluations and the mean accuracy.
func EvaluateAll(p ErrorPredictor, traces []*Trace) ([]Evaluation, float64, error) {
	return core.EvaluateAll(p, traces)
}
