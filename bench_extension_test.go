// Extension benchmarks: the paper's §VI future work, implemented — how
// TEVoT behaves under process variation and silicon aging, which enter
// the delay model as threshold-voltage shifts (internal/cells).
package tevot_test

import (
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/sta"
	"tevot/internal/workload"
)

// agedUnit builds an INT_ADD FUnit whose timing includes the given
// wearout.
func agedUnit(b *testing.B, years float64) *core.FUnit {
	b.Helper()
	u, err := core.NewFUnit(circuits.IntAdd32)
	if err != nil {
		b.Fatal(err)
	}
	opts := sta.DefaultOptions()
	if years > 0 {
		aging := cells.DefaultAging(years)
		opts.Aging = &aging
	}
	u.Opts = opts
	return u
}

// BenchmarkExtensionAging trains TEVoT on fresh silicon and scores it on
// a 5-year-old die at the fresh die's clocks, then retrains on aged
// characterization data: the accuracy drop and recovery quantify how
// wearout invalidates a delay model (the paper's motivation for naming
// aging as future work).
func BenchmarkExtensionAging(b *testing.B) {
	corner := cells.Corner{V: 0.81, T: 0}
	train := workload.RandomInt(1501, 1)
	test := workload.RandomInt(601, 2)

	fresh := agedUnit(b, 0)
	aged := agedUnit(b, 10)
	if _, err := fresh.CalibrateBaseClock(corner, train); err != nil {
		b.Fatal(err)
	}
	clocks, err := fresh.ClockPeriods(corner, []float64{0.15})
	if err != nil {
		b.Fatal(err)
	}

	var onFresh, onAged, retrained, lastAgedTER float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trFresh, err := core.Characterize(fresh, corner, train, clocks)
		if err != nil {
			b.Fatal(err)
		}
		model, err := core.Train(circuits.IntAdd32, []*core.Trace{trFresh}, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		teFresh, err := core.Characterize(fresh, corner, test, clocks)
		if err != nil {
			b.Fatal(err)
		}
		teAged, err := core.Characterize(aged, corner, test, clocks)
		if err != nil {
			b.Fatal(err)
		}
		lastAgedTER = teAged.TER(0)
		if _, onFresh, err = core.EvaluateAll(model, []*core.Trace{teFresh}); err != nil {
			b.Fatal(err)
		}
		if _, onAged, err = core.EvaluateAll(model, []*core.Trace{teAged}); err != nil {
			b.Fatal(err)
		}
		trAged, err := core.Characterize(aged, corner, train, clocks)
		if err != nil {
			b.Fatal(err)
		}
		modelAged, err := core.Train(circuits.IntAdd32, []*core.Trace{trAged}, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, retrained, err = core.EvaluateAll(modelAged, []*core.Trace{teAged}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*onFresh, "fresh-silicon-acc-%")
	b.ReportMetric(100*onAged, "aged-silicon-acc-%")
	b.ReportMetric(100*retrained, "retrained-acc-%")
	b.ReportMetric(100*lastAgedTER, "aged-TER-%")
}

// BenchmarkExtensionPostLayout contrasts pre-layout timing (fanout-only
// load model) with post-layout timing (placed interconnect) on the FP
// adder: how much delay the flow's place-and-route stage adds, and how
// the dynamic-delay spread moves with it.
func BenchmarkExtensionPostLayout(b *testing.B) {
	corner := cells.Corner{V: 0.9, T: 25}
	s := workload.Random(true, 401, 5)
	for _, layout := range []string{"pre-layout", "post-layout"} {
		b.Run(layout, func(b *testing.B) {
			u, err := core.NewFUnit(circuits.FPAdd32)
			if err != nil {
				b.Fatal(err)
			}
			if layout == "post-layout" {
				if err := u.EnableLayout(); err != nil {
					b.Fatal(err)
				}
			}
			static, err := u.Static(corner)
			if err != nil {
				b.Fatal(err)
			}
			var mean, max float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr, err := core.Characterize(u, corner, s, nil)
				if err != nil {
					b.Fatal(err)
				}
				mean, max = tr.MeanDelay(), tr.MaxDelay
			}
			b.ReportMetric(mean, "mean-ps")
			b.ReportMetric(max, "max-ps")
			b.ReportMetric(static.Delay, "static-ps")
		})
	}
}

// BenchmarkExtensionProcessSpread measures how die-to-die process
// variation moves the error-free clock: the spread across ten dies at
// one corner, relative to the typical die.
func BenchmarkExtensionProcessSpread(b *testing.B) {
	corner := cells.Corner{V: 0.85, T: 50}
	train := workload.RandomInt(401, 3)
	var lo, hi float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi = 0, 0
		for die := int64(0); die < 10; die++ {
			u, err := core.NewFUnit(circuits.IntAdd32)
			if err != nil {
				b.Fatal(err)
			}
			opts := sta.DefaultOptions()
			p := cells.DefaultProcess(die)
			opts.Process = &p
			u.Opts = opts
			base, err := u.CalibrateBaseClock(corner, train)
			if err != nil {
				b.Fatal(err)
			}
			if lo == 0 || base < lo {
				lo = base
			}
			if base > hi {
				hi = base
			}
		}
	}
	b.ReportMetric(lo, "fastest-die-ps")
	b.ReportMetric(hi, "slowest-die-ps")
	b.ReportMetric(100*(hi-lo)/lo, "die-spread-%")
}
