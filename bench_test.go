// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md §6 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured results).
//
// Each benchmark runs a reduced-scale version of its experiment per
// iteration and reports the headline quantities as custom metrics
// (accuracy in %, delays in ps, speedups in x). The cmd/ tools run the
// same experiments at arbitrary scale, up to the paper's full sweep.
package tevot_test

import (
	"strings"
	"testing"

	"tevot/internal/cells"
	"tevot/internal/circuits"
	"tevot/internal/core"
	"tevot/internal/experiments"
	"tevot/internal/workload"
)

// benchScale is the iteration-sized configuration shared by the
// experiment benchmarks.
func benchScale() experiments.Scale {
	s := experiments.Small()
	s.TrainCycles = 1200
	s.TestCycles = 500
	s.Corners = []cells.Corner{{V: 0.81, T: 0}, {V: 1.00, T: 100}}
	s.Speedups = []float64{0.05, 0.10, 0.15}
	s.Images = 2
	s.ImageSize = 20
	s.AppStreamCap = 900
	return s
}

// BenchmarkTable1ConditionGrid regenerates the operating-condition grid
// of Table I (20 voltages x 5 temperatures, 3 clock speedups) and
// validates every corner against the delay-scaling model's domain.
func BenchmarkTable1ConditionGrid(b *testing.B) {
	model := cells.DefaultScaling()
	for i := 0; i < b.N; i++ {
		g := core.TableIGrid()
		corners := g.Corners()
		if len(corners) != 100 {
			b.Fatalf("grid has %d corners, want 100", len(corners))
		}
		for _, c := range corners {
			if err := model.Validate(c); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(100, "corners")
	b.ReportMetric(3, "speedups")
}

// BenchmarkFig1DynamicDelay exercises the paper's Fig. 1 phenomenon:
// per-cycle event-driven simulation of a functional unit where the
// sensitized path — and so the measured dynamic delay — depends on the
// applied input pair. Reports the observed delay spread.
func BenchmarkFig1DynamicDelay(b *testing.B) {
	u, err := core.NewFUnit(circuits.IntAdd32)
	if err != nil {
		b.Fatal(err)
	}
	corner := cells.Corner{V: 0.9, T: 25}
	s := workload.RandomInt(501, 1)
	var minD, maxD float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := core.Characterize(u, corner, s, nil)
		if err != nil {
			b.Fatal(err)
		}
		minD, maxD = tr.StaticDelay, tr.MaxDelay
		for _, d := range tr.Delays {
			if d > 0 && d < minD {
				minD = d
			}
		}
	}
	b.ReportMetric(minD, "min-delay-ps")
	b.ReportMetric(maxD, "max-delay-ps")
}

// BenchmarkTable2MLComparison runs the learning-method comparison (LR,
// k-NN, SVM, RFC) on the FP adder and reports each method's accuracy.
func BenchmarkTable2MLComparison(b *testing.B) {
	scale := benchScale()
	scale.FUs = []circuits.FU{circuits.FPAdd32}
	scale.Corners = scale.Corners[:1]
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	var results []core.MethodResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err = experiments.Table2(lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(100*r.Accuracy, r.Method+"-acc-%")
	}
}

// BenchmarkFig3DelayCharacterization reproduces the delay-vs-corner
// characterization of Fig. 3 on the integer adder and reports the mean
// dynamic delay per dataset at the lowest-voltage corner.
func BenchmarkFig3DelayCharacterization(b *testing.B) {
	scale := benchScale()
	scale.FUs = []circuits.FU{circuits.IntAdd32}
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	corners := []cells.Corner{{V: 0.81, T: 0}, {V: 0.90, T: 50}, {V: 1.00, T: 100}}
	var rows []experiments.DelayRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig3(lab, corners)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Corner.V == 0.81 {
			b.ReportMetric(r.MeanDelay, r.Dataset+"-ps")
		}
	}
}

// BenchmarkTable3PredictionAccuracy runs the headline experiment: TEVoT
// against the Delay-based, TER-based, and TEVoT-NH baselines, averaged
// over corners, speedups, and datasets on the integer adder.
func BenchmarkTable3PredictionAccuracy(b *testing.B) {
	scale := benchScale()
	scale.FUs = []circuits.FU{circuits.IntAdd32}
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	var cells3 []experiments.Table3Cell
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells3, err = experiments.Table3(lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range []string{"TEVoT", "Delay-based", "TER-based", "TEVoT-NH"} {
		b.ReportMetric(100*experiments.MeanAccuracy(cells3, m), m+"-acc-%")
	}
}

// BenchmarkTable4QualityEstimation runs the application-quality study
// for both filters and reports each model's estimation accuracy.
func BenchmarkTable4QualityEstimation(b *testing.B) {
	scale := benchScale()
	scale.Corners = scale.Corners[:1]
	scale.Speedups = []float64{0.10}
	scale.TrainCycles = 700
	scale.AppStreamCap = 500
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	var rows []experiments.Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, _, _, err = experiments.Table4(lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		for model, acc := range row.Accuracy {
			b.ReportMetric(100*acc, row.App.String()+"-"+model+"-acc-%")
		}
	}
}

// BenchmarkFig4SobelOutputs regenerates the Fig. 4 panel (ground-truth
// and per-model degraded Sobel outputs) and reports each PSNR.
func BenchmarkFig4SobelOutputs(b *testing.B) {
	scale := benchScale()
	scale.Corners = scale.Corners[:1]
	scale.Speedups = []float64{0.15}
	scale.TrainCycles = 700
	scale.AppStreamCap = 500
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	var outputs []experiments.Fig4Output
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outputs, err = experiments.Fig4(lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, o := range outputs {
		psnr := o.PSNR
		if psnr > 99 {
			psnr = 99 // +Inf for identical images; clamp for the metric
		}
		b.ReportMetric(psnr, strings.ReplaceAll(o.Model, " ", "-")+"-dB")
	}
}

// BenchmarkSpeedupVsGateLevel quantifies §V.C's claim that TEVoT
// inference is ~100x faster than back-annotated gate-level simulation,
// on the largest functional unit (FP multiplier).
func BenchmarkSpeedupVsGateLevel(b *testing.B) {
	scale := benchScale()
	scale.FUs = []circuits.FU{circuits.FPMul32}
	scale.TrainCycles = 400
	scale.TestCycles = 300
	lab, err := experiments.NewLab(scale)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiments.SpeedupResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = experiments.Speedup(lab, circuits.FPMul32)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Speedup, "speedup-x")
	b.ReportMetric(float64(res.SimPerCycle.Nanoseconds()), "sim-ns/cycle")
	b.ReportMetric(float64(res.PredPerCycle.Nanoseconds()), "predict-ns/cycle")
}
