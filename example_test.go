package tevot_test

import (
	"fmt"
	"log"

	"tevot"
)

// Example demonstrates the full TEVoT flow: characterize a functional
// unit at an operating corner, train the delay model, and classify
// timing errors at an overclocked capture period.
func Example() {
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		log.Fatal(err)
	}
	corner := tevot.Corner{V: 0.85, T: 50}
	train := tevot.RandomWorkload(tevot.IntAdd32, 5000, 1)

	base, err := fu.CalibrateBaseClock(corner, train)
	if err != nil {
		log.Fatal(err)
	}
	trace, err := tevot.CharacterizeWithSpeedups(fu, corner, train, []float64{0.10})
	if err != nil {
		log.Fatal(err)
	}
	model, err := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	test := tevot.RandomWorkload(tevot.IntAdd32, 1000, 2)
	errs, err := model.PredictErrors(corner, test, base/1.10)
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for _, e := range errs {
		if e {
			n++
		}
	}
	fmt.Printf("predicted %d erroneous cycles of %d\n", n, len(errs))
}

// ExampleModel_PredictDelay shows a point query: the predicted dynamic
// delay of one operand transition, reusable against any clock period.
func ExampleModel_PredictDelay() {
	fu, err := tevot.NewFunctionalUnit(tevot.IntAdd32)
	if err != nil {
		log.Fatal(err)
	}
	corner := tevot.Corner{V: 0.90, T: 25}
	train := tevot.RandomWorkload(tevot.IntAdd32, 2000, 1)
	trace, err := tevot.Characterize(fu, corner, train, nil)
	if err != nil {
		log.Fatal(err)
	}
	model, err := tevot.Train(tevot.IntAdd32, []*tevot.Trace{trace}, tevot.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	cur := tevot.OperandPair{A: 0x0000FFFF, B: 1}
	prev := tevot.OperandPair{A: 0, B: 0}
	d := model.PredictDelay(corner, cur, prev)
	fmt.Printf("plausible delay: %v\n", d > 0)
	// Output: plausible delay: true
}

// ExampleTableIGrid enumerates the paper's operating-condition sweep.
func ExampleTableIGrid() {
	grid := tevot.TableIGrid()
	corners := grid.Corners()
	fmt.Printf("%d corners, first %v, last %v\n", len(corners), corners[0], corners[len(corners)-1])
	// Output: 100 corners, first (0.81V,0°C), last (1.00V,100°C)
}
