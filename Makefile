GO ?= go

.PHONY: build test check bench bench-json fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: vet + race-enabled full suite (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# DTA performance baseline: run the hot-path benchmarks and serialize
# them to BENCH_dta.json; compare two baselines with scripts/benchdiff.sh.
bench-json:
	sh scripts/benchjson.sh BENCH_dta.json

# Short active fuzzing pass over every parser fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/sdf
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/vcd
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/liberty
