GO ?= go

.PHONY: build test check bench bench-json fuzz serve cluster cluster-smoke chaos loadgen loadgen-ab

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: vet + race-enabled full suite (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# DTA performance baseline: run the hot-path benchmarks and serialize
# them to BENCH_dta.json; compare two baselines with scripts/benchdiff.sh.
bench-json:
	sh scripts/benchjson.sh BENCH_dta.json

# Boot the hardened prediction service on :8080, training and saving
# the model first if MODEL does not exist yet. Override with e.g.
#   make serve MODEL=models/FP_MUL.tevot SERVE_ADDR=:9090
MODEL ?= models/INT_ADD.tevot
SERVE_ADDR ?= :8080
serve:
	@test -f $(MODEL) || $(GO) run ./cmd/tevot-train \
		-fu $(basename $(notdir $(MODEL))) -savemodels $(dir $(MODEL))
	$(GO) run ./cmd/tevot-serve -model $(MODEL) -addr $(SERVE_ADDR)

# Open-loop saturation ramp against a running server (boot one with
# `make serve`). Override the schedule with e.g.
#   make loadgen LOADGEN_URL=http://127.0.0.1:9090 LOADGEN_RPS=500,1000,2000
LOADGEN_URL ?= http://127.0.0.1:8080
LOADGEN_RPS ?= 100,250,500,1000
LOADGEN_STEP ?= 5s
loadgen:
	$(GO) run ./cmd/tevot-loadgen -url $(LOADGEN_URL) \
		-rps $(LOADGEN_RPS) -step $(LOADGEN_STEP)

# Batching A/B: run the same ramp against -batch 64 and -batch 1
# servers over the same model and write LOADGEN_saturation.json
# comparing sustained RPS at a bounded p99.
loadgen-ab:
	sh scripts/loadgen_ab.sh

# In-process local cluster: coordinator + CLUSTER_WORKERS workers in one
# process, merged output at CLUSTER_OUT (byte-identical to a
# single-process sweep of the same flags).
CLUSTER_WORKERS ?= 3
CLUSTER_OUT ?= fig3.dist.jsonl
cluster:
	$(GO) run ./cmd/tevot-sweep -cluster $(CLUSTER_WORKERS) \
		-checkpoint $(CLUSTER_OUT).ckpt -out $(CLUSTER_OUT)

# Real-process fault drill: SIGKILL a worker mid-sweep, assert the
# merged output still matches the single-process run byte-for-byte.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Chaos soak: the seeded fault-schedule corpus (network/disk/clock
# planes) against the distributed sweep, under the race detector.
# Replay one schedule verbatim with CHAOS_SEED:
#   make chaos CHAOS_SEED=17
CHAOS_SEED ?=
chaos:
	sh scripts/chaos_soak.sh $(if $(CHAOS_SEED),-seed $(CHAOS_SEED))

# Short active fuzzing pass over every parser fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/sdf
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/vcd
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/liberty
