GO ?= go

.PHONY: build test check bench fuzz

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Hygiene gate: vet + race-enabled full suite (see scripts/check.sh).
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Short active fuzzing pass over every parser fuzz target.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/sdf
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/vcd
	$(GO) test -fuzz=FuzzParse -fuzztime=20s ./internal/liberty
